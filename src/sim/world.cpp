#include "sim/world.hpp"

#include <cmath>

#include "common/env.hpp"
#include "common/error.hpp"
#include "obs/obs.hpp"

namespace agentnet {

World::World(Aabb bounds, std::vector<Vec2> initial_positions,
             RadioModel radio, BatteryBank batteries,
             std::unique_ptr<MobilityModel> mobility, LinkPolicy policy)
    : bounds_(bounds),
      positions_(std::move(initial_positions)),
      radio_(std::move(radio)),
      batteries_(std::move(batteries)),
      mobility_(std::move(mobility)),
      builder_(bounds, radio_.max_base_range(), policy) {
  AGENTNET_REQUIRE(positions_.size() == radio_.size(),
                   "positions / radio size mismatch");
  AGENTNET_REQUIRE(positions_.size() == batteries_.size(),
                   "positions / batteries size mismatch");
  AGENTNET_REQUIRE(mobility_ != nullptr, "world needs a mobility model");
  incremental_ = env_bool("AGENTNET_TOPO_INCREMENTAL", true);
  quantum_ = env_double("AGENTNET_TOPO_RANGE_QUANTUM", 0.0);
  AGENTNET_REQUIRE(quantum_ >= 0.0, "range quantum must be >= 0");
  // Only nodes that can move or discharge can ever dirty the topology;
  // stationary mains-powered nodes (gateways, frozen mapping networks) are
  // clean forever and cost nothing per advance().
  for (std::size_t i = 0; i < positions_.size(); ++i)
    if (!mobility_->is_stationary(i) || batteries_.on_battery(i))
      maybe_dirty_.push_back(static_cast<NodeId>(i));
  ranges_.resize(positions_.size());
  for (std::size_t i = 0; i < ranges_.size(); ++i)
    ranges_[i] = quantized_range(static_cast<NodeId>(i));
  built_positions_ = positions_;
  builder_.build_into(geo_graph_, positions_, ranges_);
  refresh_effective(true);
}

World World::frozen(const GeneratedNetwork& net) {
  const std::size_t n = net.positions.size();
  BatteryBank mains(n, std::vector<bool>(n, false), BatteryParams{});
  World world(net.bounds, net.positions,
              RadioModel(net.base_ranges, RangeScaling{1.0}),
              std::move(mains), std::make_unique<StationaryMobility>(),
              net.policy);
  return world;
}

World World::fixed(Graph graph) {
  const std::size_t n = graph.node_count();
  AGENTNET_REQUIRE(n >= 1, "fixed world needs at least one node");
  // Synthetic unit-spaced geometry so World's invariants hold; the graph
  // itself is pinned and never derived from it.
  std::vector<Vec2> positions(n);
  for (std::size_t i = 0; i < n; ++i)
    positions[i] = {static_cast<double>(i), 0.0};
  const Aabb bounds{{-1.0, -1.0}, {static_cast<double>(n), 1.0}};
  BatteryBank mains(n, std::vector<bool>(n, false), BatteryParams{});
  World world(bounds, std::move(positions),
              RadioModel(std::vector<double>(n, 0.5), RangeScaling{1.0}),
              std::move(mains), std::make_unique<StationaryMobility>(),
              LinkPolicy::kDirected);
  world.fixed_topology_ = true;
  world.geo_graph_ = std::move(graph);
  world.csr_.rebuild_from(world.geo_graph_);
  return world;
}

void World::advance() {
  AGENTNET_OBS_PHASE(kWorldAdvance);
  mobility_->step(positions_);
  batteries_.step();
  // Sampled at the pre-increment step, which is the task loop's current t.
  if (AGENTNET_OBS_METRICS_WANT(step_) && batteries_.size() > 0) {
    std::size_t alive = 0;
    for (std::size_t i = 0; i < batteries_.size(); ++i)
      if (batteries_.fraction(i) > 0.0) ++alive;
    AGENTNET_OBS_GAUGE(kBatteryAlive, step_,
                       static_cast<double>(alive) /
                           static_cast<double>(batteries_.size()));
  }
  ++step_;  // the refreshed graph (incl. link weather) belongs to the new step
  refresh_topology();
}

double World::quantized_range(NodeId node) const {
  const double r = effective_range(node);
  if (quantum_ <= 0.0) return r;
  return std::floor(r / quantum_) * quantum_;
}

void World::collect_dirty() {
  dirty_.clear();
  for (NodeId i : maybe_dirty_) {
    const double r = quantized_range(i);
    if (positions_[i] != built_positions_[i] || r != ranges_[i]) {
      dirty_.push_back(i);
      ranges_[i] = r;
    }
  }
  if (!dirty_.empty()) ++state_epoch_;
}

void World::refresh_topology() {
  if (fixed_topology_) return;  // pinned graph (and its CSR) never change
  collect_dirty();
  bool geo_changed = false;
  if (!dirty_.empty()) {
    if (incremental_) {
      AGENTNET_COUNT_N(kTopoNodesDirty, dirty_.size());
      geo_changed =
          builder_.update_into(geo_graph_, dirty_, positions_, ranges_);
      for (NodeId u : dirty_) built_positions_[u] = positions_[u];
    } else {
      AGENTNET_COUNT(kTopoFullRebuilds);
      builder_.build_into(back_graph_, positions_, ranges_);
      geo_changed = !(back_graph_ == geo_graph_);
      std::swap(geo_graph_, back_graph_);
      built_positions_ = positions_;
    }
  }
  refresh_effective(geo_changed);
}

void World::rebuild_flapped() {
  back_flapped_.reset(geo_graph_.node_count());
  std::size_t drops = 0;
  for (NodeId u = 0; u < geo_graph_.node_count(); ++u) {
    flap_scratch_.clear();
    for (NodeId v : geo_graph_.out_neighbors(u)) {
      if (flapper_->down(u, v, step_))
        ++drops;
      else
        flap_scratch_.push_back(v);
    }
    back_flapped_.assign_out_edges(u, flap_scratch_);
  }
  AGENTNET_COUNT_N(kLinkFlaps, drops);
  flap_drops_ = drops;
}

void World::refresh_effective(bool geo_changed) {
  bool effective_changed;
  if (weather_active_) {
    const std::uint64_t window = step_ / flapper_->persistence();
    if (geo_changed || !flapped_valid_ || window != flap_window_) {
      rebuild_flapped();
      effective_changed = !flapped_valid_ || !(back_flapped_ == flapped_);
      std::swap(flapped_, back_flapped_);
      flapped_valid_ = true;
      flap_window_ = window;
    } else {
      // Same geometry, same weather window: the view is unchanged. Charge
      // the drops it still contains so kLinkFlaps totals stay identical to
      // the historical apply-every-step path.
      AGENTNET_COUNT_N(kLinkFlaps, flap_drops_);
      effective_changed = false;
    }
  } else {
    effective_changed = geo_changed;
  }
  if (effective_changed) {
    csr_.rebuild_from(graph());
    ++epoch_;
  } else {
    AGENTNET_COUNT(kDerivedCacheHits);  // CSR snapshot stayed warm
  }
}

void World::save_state(snapshot::ByteWriter& w) const {
  w.size(positions_.size());
  for (const Vec2& p : positions_) {
    w.f64(p.x);
    w.f64(p.y);
  }
  w.size(step_);
  batteries_.save_state(w);
  mobility_->save_state(w);
  w.u64(epoch_);
  w.u64(state_epoch_);
}

void World::load_state(snapshot::ByteReader& r) {
  const std::size_t n = r.counted(16);
  AGENTNET_REQUIRE(n == positions_.size(), "snapshot: node count mismatch");
  for (Vec2& p : positions_) {
    p.x = r.f64();
    p.y = r.f64();
  }
  step_ = r.size();
  batteries_.load_state(r);
  mobility_->load_state(r);
  if (!fixed_topology_) {
    // Rebuild every derived structure from the restored snapshot. The
    // post-advance invariant ranges_[i] == quantized_range(i) holds at a
    // checkpoint (captured at the top of a step), so recomputing here
    // reproduces the built state exactly.
    for (std::size_t i = 0; i < ranges_.size(); ++i)
      ranges_[i] = quantized_range(static_cast<NodeId>(i));
    built_positions_ = positions_;
    builder_.build_into(geo_graph_, positions_, ranges_);
    if (weather_active_) {
      rebuild_flapped();
      std::swap(flapped_, back_flapped_);
      flapped_valid_ = true;
      flap_window_ = step_ / flapper_->persistence();
    }
    csr_.rebuild_from(graph());
  }
  // The epoch counters are restored directly (not bumped by the rebuilds
  // above) so derived-state caches keyed on them stay coherent.
  epoch_ = r.u64();
  state_epoch_ = r.u64();
}

void World::set_link_flapper(std::optional<LinkFlapper> flapper) {
  AGENTNET_REQUIRE(!fixed_topology_ || !flapper,
                   "fixed-topology worlds do not support link flappers");
  flapper_ = std::move(flapper);
  weather_active_ = flapper_ && flapper_->drop_probability() > 0.0;
  flapped_valid_ = false;
  // Reconfiguration: the effective view may have switched representation,
  // so refresh it and conservatively open a new epoch.
  if (weather_active_) {
    rebuild_flapped();
    std::swap(flapped_, back_flapped_);
    flapped_valid_ = true;
    flap_window_ = step_ / flapper_->persistence();
  }
  csr_.rebuild_from(graph());
  ++epoch_;
}

}  // namespace agentnet
