#include "sim/world.hpp"

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace agentnet {

World::World(Aabb bounds, std::vector<Vec2> initial_positions,
             RadioModel radio, BatteryBank batteries,
             std::unique_ptr<MobilityModel> mobility, LinkPolicy policy)
    : bounds_(bounds),
      positions_(std::move(initial_positions)),
      radio_(std::move(radio)),
      batteries_(std::move(batteries)),
      mobility_(std::move(mobility)),
      builder_(bounds, radio_.max_base_range(), policy) {
  AGENTNET_REQUIRE(positions_.size() == radio_.size(),
                   "positions / radio size mismatch");
  AGENTNET_REQUIRE(positions_.size() == batteries_.size(),
                   "positions / batteries size mismatch");
  AGENTNET_REQUIRE(mobility_ != nullptr, "world needs a mobility model");
  rebuild_graph();
}

World World::frozen(const GeneratedNetwork& net) {
  const std::size_t n = net.positions.size();
  BatteryBank mains(n, std::vector<bool>(n, false), BatteryParams{});
  World world(net.bounds, net.positions,
              RadioModel(net.base_ranges, RangeScaling{1.0}),
              std::move(mains), std::make_unique<StationaryMobility>(),
              net.policy);
  return world;
}

World World::fixed(Graph graph) {
  const std::size_t n = graph.node_count();
  AGENTNET_REQUIRE(n >= 1, "fixed world needs at least one node");
  // Synthetic unit-spaced geometry so World's invariants hold; the graph
  // itself is pinned and never derived from it.
  std::vector<Vec2> positions(n);
  for (std::size_t i = 0; i < n; ++i)
    positions[i] = {static_cast<double>(i), 0.0};
  const Aabb bounds{{-1.0, -1.0}, {static_cast<double>(n), 1.0}};
  BatteryBank mains(n, std::vector<bool>(n, false), BatteryParams{});
  World world(bounds, std::move(positions),
              RadioModel(std::vector<double>(n, 0.5), RangeScaling{1.0}),
              std::move(mains), std::make_unique<StationaryMobility>(),
              LinkPolicy::kDirected);
  world.fixed_topology_ = true;
  world.graph_ = std::move(graph);
  world.csr_.rebuild_from(world.graph_);
  return world;
}

void World::advance() {
  AGENTNET_OBS_PHASE(kWorldAdvance);
  mobility_->step(positions_);
  batteries_.step();
  ++step_;  // the rebuilt graph (incl. link weather) belongs to the new step
  rebuild_graph();
}

void World::set_link_flapper(std::optional<LinkFlapper> flapper) {
  AGENTNET_REQUIRE(!fixed_topology_ || !flapper,
                   "fixed-topology worlds do not support link flappers");
  flapper_ = std::move(flapper);
  rebuild_graph();
}

void World::rebuild_graph() {
  if (fixed_topology_) return;  // pinned graph (and its CSR) never change
  ranges_.resize(positions_.size());
  for (std::size_t i = 0; i < ranges_.size(); ++i)
    ranges_[i] = effective_range(static_cast<NodeId>(i));
  // Rebuild into the back buffer (recycling its adjacency capacity from two
  // steps ago) and swap — no per-step Graph allocation once warm.
  builder_.build_into(back_graph_, positions_, ranges_);
  if (flapper_) flapper_->apply(back_graph_, step_);
  std::swap(graph_, back_graph_);
  csr_.rebuild_from(graph_);
}

}  // namespace agentnet
