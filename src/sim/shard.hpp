// Spatially sharded upkeep state for World (docs/PERFORMANCE.md, "Sharded
// world").
//
// WorldShards partitions the maybe-dirty node set into square tiles over the
// arena and keeps each tile's built snapshot in SoA layout: built positions
// (split x/y arrays), built quantized ranges and an on-battery flag per
// member slot. The per-step dirty scan then runs tile-local — only tiles
// that hold maybe-dirty members cost anything, mains-powered members skip
// the range recomputation entirely (their effective range is a constant),
// and no tile writes shared state, so the scan fans out over a ThreadPool
// with no synchronisation. Per-tile dirty lists are merged into one
// globally ascending (id, range) list, which makes every downstream step —
// TopologyBuilder::update_into, CSR row patching, epoch bumps — consume
// exactly the dirty set the flat path would have produced, in the same
// order. That is the whole bit-identity argument: the sharded structures
// only *find* the dirty nodes differently, they never change what is done
// with them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/dense_bitset.hpp"
#include "common/parallel_for.hpp"
#include "energy/battery.hpp"
#include "geom/vec2.hpp"
#include "net/graph.hpp"

namespace agentnet {

class WorldShards {
 public:
  /// Hard cap on the tile count; construction coarsens `tile_size` to fit
  /// (same discipline as SpatialGrid::kMaxCells).
  static constexpr std::size_t kMaxTiles = std::size_t{1} << 20;

  /// Builds the tile partition for `maybe_dirty` members at their built
  /// snapshot. `built_positions` / `built_ranges` are indexed by node id
  /// and must reflect the last topology build.
  WorldShards(Aabb bounds, double tile_size,
              std::span<const NodeId> maybe_dirty,
              const std::vector<Vec2>& built_positions,
              const std::vector<double>& built_ranges,
              const BatteryBank& batteries);

  std::size_t tile_count() const { return tiles_.size(); }
  std::size_t member_count() const { return maybe_dirty_mask_.count(); }
  double tile_size() const { return tile_size_; }
  /// Maybe-dirty membership, O(1) per query (halo-row classification).
  const DenseBitset& maybe_dirty_mask() const { return maybe_dirty_mask_; }

  /// Per-tile dirty scan against `positions`; `range_of(node)` must return
  /// the node's current quantized effective range (only battery-powered
  /// members are asked). Fills dirty_ids()/dirty_ranges() — globally
  /// ascending, identical to the flat World::collect_dirty() output — and
  /// last_tiles_dirty(). Safe to fan out: each tile touches only its own
  /// scratch, `positions` and `range_of` are read-only.
  template <class RangeFn>
  void collect_dirty(const std::vector<Vec2>& positions, RangeFn&& range_of,
                     ThreadPool* pool) {
    auto scan_tile = [&](std::size_t t) {
      Tile& tile = tiles_[t];
      tile.dirty.clear();
      tile.dirty_range.clear();
      for (std::size_t s = 0; s < tile.members.size(); ++s) {
        const NodeId m = tile.members[s];
        double r = tile.built_range[s];
        if (tile.on_battery[s]) r = range_of(m);
        const Vec2 p = positions[m];
        if (p.x != tile.built_x[s] || p.y != tile.built_y[s] ||
            r != tile.built_range[s]) {
          tile.dirty.push_back(m);
          tile.dirty_range.push_back(r);
        }
      }
    };
    if (pool != nullptr && pool->size() > 1) {
      parallel_for(*pool, tiles_.size(), scan_tile);
    } else {
      for (std::size_t t = 0; t < tiles_.size(); ++t) scan_tile(t);
    }
    // Deterministic ordered merge: tile order is fixed, and the global
    // sort by id erases even that — the output is a pure function of the
    // (positions, ranges) snapshot, independent of tiling and threads.
    merged_.clear();
    last_tiles_dirty_ = 0;
    for (const Tile& tile : tiles_) {
      if (tile.dirty.empty()) continue;
      ++last_tiles_dirty_;
      for (std::size_t k = 0; k < tile.dirty.size(); ++k)
        merged_.push_back({tile.dirty[k], tile.dirty_range[k]});
    }
    std::sort(merged_.begin(), merged_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    dirty_ids_.clear();
    dirty_ranges_.clear();
    for (const auto& [id, r] : merged_) {
      dirty_ids_.push_back(id);
      dirty_ranges_.push_back(r);
    }
  }

  /// The last scan's dirty nodes, ascending, with their new quantized
  /// ranges in lockstep.
  const std::vector<NodeId>& dirty_ids() const { return dirty_ids_; }
  const std::vector<double>& dirty_ranges() const { return dirty_ranges_; }
  /// Tiles that contributed ≥1 dirty node in the last scan.
  std::size_t last_tiles_dirty() const { return last_tiles_dirty_; }

  /// Folds the last scan's dirty set back into the built snapshot:
  /// built positions/ranges take the scanned values and members whose new
  /// position crossed a tile boundary migrate buckets. Call after the
  /// topology patch succeeded (mirrors built_positions_ upkeep).
  void commit(const std::vector<Vec2>& positions);

  /// Heap footprint (bytes/node accounting; O(tiles) walk).
  std::size_t heap_bytes() const;

 private:
  struct Tile {
    std::vector<NodeId> members;      // node id per slot
    std::vector<double> built_x;      // SoA built position, x
    std::vector<double> built_y;      // SoA built position, y
    std::vector<double> built_range;  // built quantized range
    std::vector<char> on_battery;     // 1 ⇒ range can drift per step
    std::vector<NodeId> dirty;        // scan scratch
    std::vector<double> dirty_range;  // scan scratch
  };

  std::size_t tile_of_pos(Vec2 p) const;
  void insert_member(std::size_t tile, NodeId m, Vec2 pos, double range,
                     bool battery);
  /// Swap-erase `m` from its tile, fixing the displaced member's slot.
  void remove_member(NodeId m);

  Aabb bounds_;
  double tile_size_ = 1.0;
  int cols_ = 1;
  int rows_ = 1;
  std::vector<Tile> tiles_;
  DenseBitset maybe_dirty_mask_;
  std::vector<std::uint32_t> tile_of_;  // per node; kInvalidNode ⇒ not a member
  std::vector<std::uint32_t> slot_of_;
  std::vector<std::pair<NodeId, double>> merged_;  // merge scratch
  std::vector<NodeId> dirty_ids_;
  std::vector<double> dirty_ranges_;
  std::size_t last_tiles_dirty_ = 0;
};

}  // namespace agentnet
