// Umbrella header: the whole public API of agentnet.
//
//   #include "agentnet.hpp"
//
// Layering (each header can also be included individually):
//   common/   rng, stats, tables, options, env, logging, errors
//   geom/     2-D vectors, spatial hash grid
//   energy/   battery models
//   radio/    range models (heterogeneous, battery-scaled)
//   mobility/ stationary, random-direction, random-waypoint, Gauss-Markov,
//             recorded traces
//   net/      directed graph, topology builder, generators, metrics
//   sim/      the simulated World
//   fault/    deterministic fault injection + resilience (watchdog)
//   routing/  routing tables, connectivity metrics, gateway balancing
//   traffic/  packet-level delivery over agent-maintained routes, plus the
//             flow-based heavy-traffic data plane (docs/TRAFFIC.md)
//   core/     the paper's agents and tasks (mapping + dynamic routing)
//   aco/      ant-colony routing baseline (AntHocNet-style, ref [9])
//   adv/      distance-vector-carrying agent baseline (refs [10][11])
//   flooding/ link-state flooding baseline for mapping
//   io/       save/load, DOT and CSV export, run recording
//   experiments/ multi-run harness and paper constants
#pragma once

#include "aco/ant_routing.hpp"
#include "aco/ant_routing_task.hpp"
#include "adv/dv_agent.hpp"
#include "common/compare.hpp"
#include "common/dense_bitset.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/options.hpp"
#include "common/parallel_for.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "core/map_knowledge.hpp"
#include "core/mapping_agent.hpp"
#include "core/mapping_task.hpp"
#include "core/routing_agent.hpp"
#include "core/routing_task.hpp"
#include "core/selection.hpp"
#include "core/stigmergy.hpp"
#include "energy/battery.hpp"
#include "experiments/mapping_experiments.hpp"
#include "experiments/paper.hpp"
#include "experiments/routing_experiments.hpp"
#include "experiments/traffic_experiments.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/watchdog.hpp"
#include "flooding/link_state.hpp"
#include "geom/spatial_grid.hpp"
#include "geom/vec2.hpp"
#include "io/network_io.hpp"
#include "io/scenario_io.hpp"
#include "mobility/mobility.hpp"
#include "net/generators.hpp"
#include "net/graph.hpp"
#include "net/link_noise.hpp"
#include "net/metrics.hpp"
#include "net/topology.hpp"
#include "radio/range_model.hpp"
#include "routing/connectivity.hpp"
#include "routing/gateway_balancer.hpp"
#include "routing/route_metrics.hpp"
#include "routing/routing_table.hpp"
#include "sim/world.hpp"
#include "traffic/flow_traffic.hpp"
#include "traffic/traffic.hpp"
