#include "experiments/traffic_experiments.hpp"

#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/parallel_for.hpp"
#include "fault/fault_injector.hpp"
#include "routing/connectivity.hpp"

namespace agentnet {

TrafficTaskResult run_traffic_task(const RoutingScenario& scenario,
                                   const TrafficTaskConfig& config, Rng rng) {
  AGENTNET_REQUIRE(config.measure_from < config.steps,
                   "measure_from must precede steps");
  const FaultPlan& plan = config.faults;
  plan.validate();
  obs::ScopedPhase setup_phase(obs::Phase::kSetup);
  World world = scenario.make_world();
  std::optional<FaultInjector> injector;
  if (plan.any()) {
    Rng fault_stream = rng.fork(0xFA11);
    injector.emplace(plan, fault_stream);
  }
  AntRoutingConfig ant_config = config.ants;
  if (plan.agent_loss_probability > 0.0 &&
      ant_config.ant_loss_probability == 0.0)
    ant_config.ant_loss_probability = plan.agent_loss_probability;
  // The data plane gets its own stream so adding traffic never perturbs
  // the ants' draw sequence (the zero-load golden-equivalence anchor).
  Rng traffic_stream = rng.fork(0xF10A);
  AntRoutingSystem ants(world.node_count(), scenario.is_gateway(), ant_config,
                        rng);
  FlowTrafficSimulator traffic(world.node_count(), scenario.is_gateway(),
                               config.workload, config.queue, traffic_stream);
  GatewayBalancer balancer(world.node_count(), scenario.is_gateway(),
                           config.balancer);
  ConnectivityCache conn_cache;
  RunningStats window;
  setup_phase.stop();
  for (std::size_t t = 0; t < config.steps; ++t) {
    if (t == config.measure_from) traffic.reset_stats();
    const Graph& live =
        injector ? injector->live_graph(world, world.step()) : world.graph();
    {
      AGENTNET_OBS_PHASE(kStep);
      // Control plane first: ants sample over the queues the data plane
      // left behind last step, so trip times reflect live congestion.
      ants.step(live, t, traffic.hop_delays(),
                config.balance_gateways
                    ? std::span<const double>(balancer.bias())
                    : std::span<const double>{});
    }
    const RoutingTables tables = ants.snapshot_tables(t);
    {
      AGENTNET_OBS_PHASE(kStep);
      traffic.step(live, tables, t);
      if (config.balance_gateways)
        balancer.observe(traffic.gateway_deliveries());
    }
    {
      AGENTNET_OBS_PHASE(kMeasure);
      if (t >= config.measure_from) {
        const double fraction =
            injector && plan.topology_faults()
                ? measure_connectivity(live, tables, scenario.is_gateway())
                      .fraction()
                : conn_cache.measure(world, tables, scenario.is_gateway())
                      .fraction();
        window.add(fraction);
        AGENTNET_OBS_GAUGE(kConnectivity, t, fraction);
      }
      if (AGENTNET_OBS_METRICS_WANT(t)) {
        AGENTNET_OBS_GAUGE(kQueueDepth, t,
                           static_cast<double>(traffic.queued()));
        AGENTNET_OBS_GAUGE(kPheromoneEntropy, t, ants.pheromone_entropy());
        if (injector && plan.topology_faults())
          AGENTNET_OBS_GAUGE(kLiveFraction, t,
                             injector->live_fraction(world.node_count()));
        AGENTNET_OBS_LATENCY_WINDOW(t, traffic.stats().latency_histogram);
      }
    }
    world.advance();
    AGENTNET_OBS_METRICS_TICK(t);
  }
  AGENTNET_OBS_PHASE(kSummarize);
  traffic.finish();
  TrafficTaskResult result;
  result.traffic = traffic.stats();
  result.mean_connectivity = window.mean();
  const auto window_steps =
      static_cast<double>(config.steps - config.measure_from);
  double sources = 0.0;
  for (const bool gw : scenario.is_gateway())
    if (!gw) sources += 1.0;
  const double denom = window_steps * sources;
  if (denom > 0.0) {
    result.offered_load =
        static_cast<double>(result.traffic.generated) / denom;
    result.carried_load =
        static_cast<double>(result.traffic.delivered) / denom;
  }
  result.ants_launched = ants.ants_launched();
  result.ants_completed = ants.ants_completed();
  result.ant_hops = ants.ant_hops();
  return result;
}

TrafficSummary run_traffic_experiment(const RoutingScenario& scenario,
                                      const TrafficTaskConfig& task,
                                      int runs, std::uint64_t run_seed_base,
                                      int threads, const ObsConfig& obs,
                                      const FaultConfig& faults) {
  AGENTNET_REQUIRE(runs >= 1, "need at least one run");
  AGENTNET_REQUIRE(threads >= 0, "threads must be >= 0");

  TrafficTaskConfig effective = task;
  if (!(faults == FaultPlan{})) effective.faults = faults;

  std::vector<obs::RunObs> slots(static_cast<std::size_t>(runs));
  obs::enable_slots(slots, obs);

  std::vector<TrafficTaskResult> results(static_cast<std::size_t>(runs));
  parallel_for(
      results.size(),
      [&](std::size_t r) {
        obs::ObsRunScope scope(slots[r]);
        results[r] = run_traffic_task(
            scenario, effective,
            Rng(run_seed_base + static_cast<std::uint64_t>(r)));
      },
      static_cast<std::size_t>(threads));

  obs::merge_and_write(slots, obs, run_seed_base, runs, threads);

  // Run-index-order combination: integer stats merge exactly, so the
  // percentile read off the merged histogram is thread-count invariant.
  TrafficSummary summary;
  summary.runs = runs;
  for (const auto& result : results) {
    summary.traffic += result.traffic;
    summary.mean_connectivity.add(result.mean_connectivity);
    summary.delivery_ratio.add(result.traffic.delivery_ratio());
    summary.offered_load.add(result.offered_load);
    summary.carried_load.add(result.carried_load);
  }
  return summary;
}

}  // namespace agentnet
