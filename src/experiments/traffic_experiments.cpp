#include "experiments/traffic_experiments.hpp"

#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/parallel_for.hpp"
#include "fault/fault_injector.hpp"
#include "routing/connectivity.hpp"
#include "snapshot/snapshot.hpp"

namespace agentnet {

TrafficTaskResult run_traffic_task(const RoutingScenario& scenario,
                                   const TrafficTaskConfig& config, Rng rng) {
  AGENTNET_REQUIRE(config.measure_from < config.steps,
                   "measure_from must precede steps");
  const FaultPlan& plan = config.faults;
  plan.validate();
  obs::ScopedPhase setup_phase(obs::Phase::kSetup);
  World world = scenario.make_world();
  std::optional<FaultInjector> injector;
  if (plan.any()) {
    Rng fault_stream = rng.fork(0xFA11);
    injector.emplace(plan, fault_stream);
  }
  AntRoutingConfig ant_config = config.ants;
  if (plan.agent_loss_probability > 0.0 &&
      ant_config.ant_loss_probability == 0.0)
    ant_config.ant_loss_probability = plan.agent_loss_probability;
  // The data plane gets its own stream so adding traffic never perturbs
  // the ants' draw sequence (the zero-load golden-equivalence anchor).
  Rng traffic_stream = rng.fork(0xF10A);
  AntRoutingSystem ants(world.node_count(), scenario.is_gateway(), ant_config,
                        rng);
  FlowTrafficSimulator traffic(world.node_count(), scenario.is_gateway(),
                               config.workload, config.queue, traffic_stream);
  const AgentParallel par(config.agent_parallel);
  ants.set_parallel(par);
  traffic.set_parallel(par);
  GatewayBalancer balancer(world.node_count(), scenario.is_gateway(),
                           config.balancer);
  ConnectivityCache conn_cache;
  RunningStats window;

  // Checkpoint/restore: both planes, the balancer feedback, the fault mask
  // and the measurement accumulators. Captured at the loop top, *before*
  // the measure_from stats reset, so a resume at that step still resets.
  const auto save_run = [&](snapshot::ByteWriter& w) {
    world.save_state(w);
    w.boolean(injector.has_value());
    if (injector) injector->save_state(w);
    ants.save_state(w);
    traffic.save_state(w);
    balancer.save_state(w);
    conn_cache.save_state(w);
    window.save_state(w);
  };
  const auto load_run = [&](snapshot::ByteReader& r) {
    world.load_state(r);
    AGENTNET_REQUIRE(r.boolean() == injector.has_value(),
                     "snapshot: fault plan mismatch");
    if (injector) injector->load_state(r);
    ants.load_state(r);
    traffic.load_state(r);
    balancer.load_state(r);
    conn_cache.load_state(r);
    window.load_state(r);
  };

  setup_phase.stop();
  std::size_t resume_at = 0;
  if (config.checkpoint && config.checkpoint->resuming())
    resume_at = config.checkpoint->restore(load_run);
  for (std::size_t t = resume_at; t < config.steps; ++t) {
    if (config.checkpoint && config.checkpoint->save_due(t))
      config.checkpoint->save(t, save_run);
    if (t == config.measure_from) traffic.reset_stats();
    const Graph& live =
        injector ? injector->live_graph(world, world.step()) : world.graph();
    {
      AGENTNET_OBS_PHASE(kStep);
      // Control plane first: ants sample over the queues the data plane
      // left behind last step, so trip times reflect live congestion.
      ants.step(live, t, traffic.hop_delays(),
                config.balance_gateways
                    ? std::span<const double>(balancer.bias())
                    : std::span<const double>{});
    }
    const RoutingTables tables = ants.snapshot_tables(t);
    {
      AGENTNET_OBS_PHASE(kStep);
      traffic.step(live, tables, t);
      if (config.balance_gateways)
        balancer.observe(traffic.gateway_deliveries());
    }
    {
      AGENTNET_OBS_PHASE(kMeasure);
      if (t >= config.measure_from) {
        const double fraction =
            injector && plan.topology_faults()
                ? measure_connectivity(live, tables, scenario.is_gateway(), 0,
                                       par)
                      .fraction()
                : conn_cache.measure(world, tables, scenario.is_gateway(), 0,
                                     par)
                      .fraction();
        window.add(fraction);
        AGENTNET_OBS_GAUGE(kConnectivity, t, fraction);
      }
      if (AGENTNET_OBS_METRICS_WANT(t)) {
        AGENTNET_OBS_GAUGE(kQueueDepth, t,
                           static_cast<double>(traffic.queued()));
        AGENTNET_OBS_GAUGE(kPheromoneEntropy, t, ants.pheromone_entropy());
        if (injector && plan.topology_faults())
          AGENTNET_OBS_GAUGE(kLiveFraction, t,
                             injector->live_fraction(world.node_count()));
        AGENTNET_OBS_LATENCY_WINDOW(t, traffic.stats().latency_histogram);
      }
    }
    world.advance();
    AGENTNET_OBS_METRICS_TICK(t);
  }
  AGENTNET_OBS_PHASE(kSummarize);
  traffic.finish();
  TrafficTaskResult result;
  result.traffic = traffic.stats();
  result.mean_connectivity = window.mean();
  const auto window_steps =
      static_cast<double>(config.steps - config.measure_from);
  double sources = 0.0;
  for (const bool gw : scenario.is_gateway())
    if (!gw) sources += 1.0;
  const double denom = window_steps * sources;
  if (denom > 0.0) {
    result.offered_load =
        static_cast<double>(result.traffic.generated) / denom;
    result.carried_load =
        static_cast<double>(result.traffic.delivered) / denom;
  }
  result.ants_launched = ants.ants_launched();
  result.ants_completed = ants.ants_completed();
  result.ant_hops = ants.ant_hops();
  return result;
}

TrafficSummary run_traffic_experiment(const RoutingScenario& scenario,
                                      const TrafficTaskConfig& task,
                                      int runs, std::uint64_t run_seed_base,
                                      int threads, const ObsConfig& obs,
                                      const FaultConfig& faults) {
  AGENTNET_REQUIRE(runs >= 1, "need at least one run");
  AGENTNET_REQUIRE(threads >= 0, "threads must be >= 0");

  TrafficTaskConfig effective = task;
  if (!(faults == FaultPlan{})) effective.faults = faults;

  std::vector<obs::RunObs> slots(static_cast<std::size_t>(runs));
  obs::enable_slots(slots, obs);

  const auto checkpointer = snapshot::ExperimentCheckpointer::from_env(
      {"traffic", static_cast<std::uint64_t>(runs), run_seed_base,
       scenario.node_count(), effective.steps});

  std::vector<TrafficTaskResult> results(static_cast<std::size_t>(runs));
  parallel_for(
      results.size(),
      [&](std::size_t r) {
        obs::ObsRunScope scope(slots[r]);
        TrafficTaskConfig run_config = effective;
        snapshot::RunCheckpointPort port;
        if (checkpointer) {
          port = checkpointer->port(r);
          run_config.checkpoint = &port;
        }
        results[r] = run_traffic_task(
            scenario, run_config,
            Rng(run_seed_base + static_cast<std::uint64_t>(r)));
      },
      static_cast<std::size_t>(threads));

  obs::merge_and_write(slots, obs, run_seed_base, runs, threads);

  // Run-index-order combination: integer stats merge exactly, so the
  // percentile read off the merged histogram is thread-count invariant.
  TrafficSummary summary;
  summary.runs = runs;
  for (const auto& result : results) {
    summary.traffic += result.traffic;
    summary.mean_connectivity.add(result.mean_connectivity);
    summary.delivery_ratio.add(result.traffic.delivery_ratio());
    summary.offered_load.add(result.offered_load);
    summary.carried_load.add(result.carried_load);
  }
  return summary;
}

}  // namespace agentnet
