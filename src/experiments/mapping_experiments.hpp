// Multi-run harness for mapping experiments: same network, `runs`
// independent agent placements, aggregated finishing time and knowledge
// curves (the paper's Figs. 1–6 protocol).
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "core/mapping_task.hpp"
#include "fault/fault_plan.hpp"
#include "net/generators.hpp"
#include "obs/obs.hpp"

namespace agentnet {

struct MappingSummary {
  /// Finishing time over the runs that finished.
  RunningStats finishing_time;
  int runs = 0;
  int unfinished = 0;
  /// Per-step mean-over-agents knowledge fraction, aggregated across runs.
  /// Runs shorter than the longest are padded with their final value (a
  /// finished team's knowledge stays perfect).
  SeriesAccumulator knowledge;
};

/// Runs `runs` independent replications (run r is seeded run_seed_base + r)
/// and aggregates them. Replications execute on a worker pool — `threads`
/// 0 means AGENTNET_THREADS / hardware_concurrency, 1 the exact serial
/// loop — but are always combined in run-index order, so the summary is
/// bit-identical at every thread count. Each run gets its own telemetry
/// slot (counters, phase timings, optional trace buffer), merged in run
/// order into `obs.sink` (or the caller's current slot); with a trace path
/// set the per-run event streams are appended to it (docs/OBSERVABILITY.md).
/// A non-inert `faults` plan overrides `task.faults` for every run — the
/// AGENTNET_FAULT_* environment drives chaos sweeps over unmodified benches
/// exactly like AGENTNET_TRACE drives tracing (docs/ROBUSTNESS.md).
MappingSummary run_mapping_experiment(const GeneratedNetwork& network,
                                      const MappingTaskConfig& task,
                                      int runs, std::uint64_t run_seed_base,
                                      int threads = 0,
                                      const ObsConfig& obs =
                                          ObsConfig::from_env(),
                                      const FaultConfig& faults =
                                          FaultConfig::from_env());

/// Decimates a per-step series to at most `max_points` evenly spaced
/// samples (always keeping the final step) for tabular figure output.
std::vector<std::size_t> series_sample_points(std::size_t length,
                                              std::size_t max_points);

}  // namespace agentnet
