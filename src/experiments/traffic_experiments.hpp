// Loaded-network experiments: ant-maintained routes carrying flow traffic.
//
// run_traffic_task closes the AntNet control loop on the paper's routing
// scenario: forward ants sample routes, the flow data plane (see
// docs/TRAFFIC.md) pushes session traffic over the snapshot tables, its
// queue occupancies feed back into the ants' trip times (kDelay mode) and
// the gateway balancer damps deposits through hot gateways. The multi-run
// harness mirrors run_routing_experiment: forked per-run seeds, per-run
// telemetry slots, run-index-order merging — every aggregate, including
// the latency percentiles (exact integer histogram), is bit-identical at
// any AGENTNET_THREADS setting.
#pragma once

#include <cstdint>

#include "aco/ant_routing.hpp"
#include "common/stats.hpp"
#include "core/routing_task.hpp"
#include "fault/fault_plan.hpp"
#include "obs/obs.hpp"
#include "routing/gateway_balancer.hpp"
#include "traffic/flow_traffic.hpp"

namespace agentnet {

struct TrafficTaskConfig {
  AntRoutingConfig ants{};
  FlowWorkloadConfig workload{};
  LinkQueueConfig queue{};
  /// Feed GatewayBalancer bias into backward-ant deposits.
  bool balance_gateways = false;
  GatewayBalancerConfig balancer{};
  std::size_t steps = 300;
  /// Traffic statistics restart here (warm-up excluded); connectivity is
  /// averaged over the same converged window.
  std::size_t measure_from = 150;
  /// Unified fault model, masking the graph both planes see.
  FaultPlan faults;
  /// Intra-run agent parallelism (AGENTNET_AGENT_THREADS), threaded into
  /// both planes: ant evaporation/entropy/snapshot, per-node queue service
  /// and the per-root connectivity walks fan over the shared agent pool.
  /// Bit-identical at every thread count; threads = 1 (the default) is the
  /// exact serial path. Nested runs x agent batches share the pool.
  AgentParallelConfig agent_parallel = AgentParallelConfig::from_env();
  /// Checkpoint/restore handle for this run (nullptr = disabled). Owned by
  /// the caller; see snapshot/snapshot.hpp and docs/ROBUSTNESS.md.
  snapshot::RunCheckpointPort* checkpoint = nullptr;
};

struct TrafficTaskResult {
  FlowTrafficStats traffic;
  double mean_connectivity = 0.0;
  /// Offered / carried load in packets per non-gateway node per step,
  /// over the measured window.
  double offered_load = 0.0;
  double carried_load = 0.0;
  std::size_t ants_launched = 0;
  std::size_t ants_completed = 0;
  std::size_t ant_hops = 0;
};

TrafficTaskResult run_traffic_task(const RoutingScenario& scenario,
                                   const TrafficTaskConfig& config, Rng rng);

struct TrafficSummary {
  int runs = 0;
  /// Exact element-wise merge of every run's stats, in run-index order;
  /// latency percentiles come off the merged histogram.
  FlowTrafficStats traffic;
  RunningStats mean_connectivity;
  RunningStats delivery_ratio;
  RunningStats offered_load;
  RunningStats carried_load;
};

/// `runs` independent replications (run r seeded run_seed_base + r) on a
/// worker pool, combined in run-index order; see run_routing_experiment
/// for the threading / telemetry / fault-override contract it mirrors.
TrafficSummary run_traffic_experiment(const RoutingScenario& scenario,
                                      const TrafficTaskConfig& task,
                                      int runs, std::uint64_t run_seed_base,
                                      int threads = 0,
                                      const ObsConfig& obs =
                                          ObsConfig::from_env(),
                                      const FaultConfig& faults =
                                          FaultConfig::from_env());

}  // namespace agentnet
