// Multi-run harness for dynamic-routing experiments: one scenario (same
// placement + movement script), `runs` independent agent placements,
// aggregated connectivity traces and converged-window means (the paper's
// Figs. 7–11 protocol).
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "core/routing_task.hpp"
#include "fault/fault_plan.hpp"
#include "obs/obs.hpp"

namespace agentnet {

struct RoutingSummary {
  int runs = 0;
  /// Mean connectivity over the converged window, one sample per run.
  RunningStats mean_connectivity;
  /// Per-run stddev of connectivity inside the window (stability measure).
  RunningStats window_stddev;
  /// Per-step connectivity aggregated across runs.
  SeriesAccumulator connectivity;
  /// Per-step oracle upper bound (filled when the task records it; the
  /// oracle depends only on the movement script, so runs are identical).
  SeriesAccumulator oracle;
};

/// Runs `runs` independent replications (run r is seeded run_seed_base + r)
/// and aggregates them. Replications execute on a worker pool — `threads`
/// 0 means AGENTNET_THREADS / hardware_concurrency, 1 the exact serial
/// loop — but are always combined in run-index order, so the summary is
/// bit-identical at every thread count. Each run gets its own telemetry
/// slot (counters, phase timings, optional trace buffer), merged in run
/// order into `obs.sink` (or the caller's current slot); with a trace path
/// set the per-run event streams are appended to it (docs/OBSERVABILITY.md).
/// A non-inert `faults` plan overrides `task.faults` for every run — the
/// AGENTNET_FAULT_* environment drives chaos sweeps over unmodified benches
/// exactly like AGENTNET_TRACE drives tracing (docs/ROBUSTNESS.md).
RoutingSummary run_routing_experiment(const RoutingScenario& scenario,
                                      const RoutingTaskConfig& task,
                                      int runs, std::uint64_t run_seed_base,
                                      int threads = 0,
                                      const ObsConfig& obs =
                                          ObsConfig::from_env(),
                                      const FaultConfig& faults =
                                          FaultConfig::from_env());

}  // namespace agentnet
