#include "experiments/mapping_experiments.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/parallel_for.hpp"
#include "sim/world.hpp"
#include "snapshot/snapshot.hpp"

namespace agentnet {

MappingSummary run_mapping_experiment(const GeneratedNetwork& network,
                                      const MappingTaskConfig& task,
                                      int runs, std::uint64_t run_seed_base,
                                      int threads, const ObsConfig& obs,
                                      const FaultConfig& faults) {
  AGENTNET_REQUIRE(runs >= 1, "need at least one run");
  AGENTNET_REQUIRE(threads >= 0, "threads must be >= 0");

  // Environment-driven chaos: a non-inert plan overrides the task's own.
  MappingTaskConfig effective = task;
  if (!(faults == FaultPlan{})) effective.faults = faults;

  // One telemetry slot per run: each replication counts and traces into its
  // own shard, merged in run-index order below.
  std::vector<obs::RunObs> slots(static_cast<std::size_t>(runs));
  obs::enable_slots(slots, obs);

  // Fan the replications out: run r is a pure function of (task, seed + r)
  // and writes only its own slot, so execution order is irrelevant.
  const auto checkpointer = snapshot::ExperimentCheckpointer::from_env(
      {"mapping", static_cast<std::uint64_t>(runs), run_seed_base,
       network.graph.node_count(), effective.max_steps});

  std::vector<MappingTaskResult> results(static_cast<std::size_t>(runs));
  parallel_for(
      results.size(),
      [&](std::size_t r) {
        obs::ObsRunScope scope(slots[r]);
        World world = World::frozen(network);
        MappingTaskConfig run_config = effective;
        snapshot::RunCheckpointPort port;
        if (checkpointer) {
          port = checkpointer->port(r);
          run_config.checkpoint = &port;
        }
        results[r] = run_mapping_task(
            world, run_config,
            Rng(run_seed_base + static_cast<std::uint64_t>(r)));
      },
      static_cast<std::size_t>(threads));

  obs::merge_and_write(slots, obs, run_seed_base, runs, threads);

  // Combine in run-index order — the exact aggregation the serial loop
  // performed, so summaries are bit-identical at every thread count.
  MappingSummary summary;
  summary.runs = runs;
  std::vector<std::vector<double>> series;
  series.reserve(results.size());
  for (auto& result : results) {
    if (result.finished)
      summary.finishing_time.add(static_cast<double>(result.finishing_time));
    else
      ++summary.unfinished;
    if (task.record_series) series.push_back(std::move(result.mean_knowledge));
  }
  if (!series.empty()) {
    std::size_t max_len = 0;
    for (const auto& s : series) max_len = std::max(max_len, s.size());
    for (auto& s : series) {
      const double pad = s.empty() ? 0.0 : s.back();
      s.resize(max_len, pad);
      summary.knowledge.add(s);
    }
  }
  return summary;
}

std::vector<std::size_t> series_sample_points(std::size_t length,
                                              std::size_t max_points) {
  AGENTNET_REQUIRE(max_points >= 2, "need at least two sample points");
  std::vector<std::size_t> points;
  if (length == 0) return points;
  if (length <= max_points) {
    points.resize(length);
    for (std::size_t i = 0; i < length; ++i) points[i] = i;
    return points;
  }
  for (std::size_t k = 0; k < max_points; ++k) {
    const std::size_t idx =
        k * (length - 1) / (max_points - 1);
    if (points.empty() || points.back() != idx) points.push_back(idx);
  }
  return points;
}

}  // namespace agentnet
