#include "experiments/mapping_experiments.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sim/world.hpp"

namespace agentnet {

MappingSummary run_mapping_experiment(const GeneratedNetwork& network,
                                      const MappingTaskConfig& task,
                                      int runs, std::uint64_t run_seed_base) {
  AGENTNET_REQUIRE(runs >= 1, "need at least one run");
  MappingSummary summary;
  summary.runs = runs;
  std::vector<std::vector<double>> series;
  series.reserve(static_cast<std::size_t>(runs));
  for (int r = 0; r < runs; ++r) {
    World world = World::frozen(network);
    MappingTaskResult result = run_mapping_task(
        world, task, Rng(run_seed_base + static_cast<std::uint64_t>(r)));
    if (result.finished)
      summary.finishing_time.add(
          static_cast<double>(result.finishing_time));
    else
      ++summary.unfinished;
    if (task.record_series) series.push_back(std::move(result.mean_knowledge));
  }
  if (!series.empty()) {
    std::size_t max_len = 0;
    for (const auto& s : series) max_len = std::max(max_len, s.size());
    for (auto& s : series) {
      const double pad = s.empty() ? 0.0 : s.back();
      s.resize(max_len, pad);
      summary.knowledge.add(s);
    }
  }
  return summary;
}

std::vector<std::size_t> series_sample_points(std::size_t length,
                                              std::size_t max_points) {
  AGENTNET_REQUIRE(max_points >= 2, "need at least two sample points");
  std::vector<std::size_t> points;
  if (length == 0) return points;
  if (length <= max_points) {
    points.resize(length);
    for (std::size_t i = 0; i < length; ++i) points[i] = i;
    return points;
  }
  for (std::size_t k = 0; k < max_points; ++k) {
    const std::size_t idx =
        k * (length - 1) / (max_points - 1);
    if (points.empty() || points.back() != idx) points.push_back(idx);
  }
  return points;
}

}  // namespace agentnet
