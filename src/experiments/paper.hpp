// Canonical constants for the paper reproduction. Every bench binary and
// example uses these so "the network" means the same artefact everywhere.
#pragma once

#include <cstdint>

namespace agentnet::paper {

/// Scenario seed for the 300-node / ≈2164-edge mapping network (the
/// authors' concrete graph is unpublished; this seed pins ours).
inline constexpr std::uint64_t kMappingNetworkSeed = 2010;

/// Scenario seed for the 250-node / 12-gateway routing world (placement,
/// masks and the full movement script derive from it).
inline constexpr std::uint64_t kRoutingScenarioSeed = 2010;

/// Base for per-run agent seeds: run r uses kRunSeedBase + r.
inline constexpr std::uint64_t kRunSeedBase = 1000;

/// The paper's averaging protocol: 40 independent runs per setting.
inline constexpr int kPaperRuns = 40;

/// Routing measurement protocol: 300 steps, converged window from 150.
inline constexpr std::size_t kRoutingSteps = 300;
inline constexpr std::size_t kRoutingMeasureFrom = 150;

}  // namespace agentnet::paper
