#include "experiments/routing_experiments.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/parallel_for.hpp"
#include "snapshot/snapshot.hpp"

namespace agentnet {

RoutingSummary run_routing_experiment(const RoutingScenario& scenario,
                                      const RoutingTaskConfig& task,
                                      int runs, std::uint64_t run_seed_base,
                                      int threads, const ObsConfig& obs,
                                      const FaultConfig& faults) {
  AGENTNET_REQUIRE(runs >= 1, "need at least one run");
  AGENTNET_REQUIRE(threads >= 0, "threads must be >= 0");

  // Environment-driven chaos: a non-inert plan overrides the task's own.
  RoutingTaskConfig effective = task;
  if (!(faults == FaultPlan{})) effective.faults = faults;

  // One telemetry slot per run: each replication counts and traces into its
  // own shard, merged in run-index order below.
  std::vector<obs::RunObs> slots(static_cast<std::size_t>(runs));
  obs::enable_slots(slots, obs);

  // Fan the replications out: run r is a pure function of (scenario, task,
  // seed + r) and writes only its own slot (the scenario is immutable and
  // each task stamps out its own World).
  const auto checkpointer = snapshot::ExperimentCheckpointer::from_env(
      {"routing", static_cast<std::uint64_t>(runs), run_seed_base,
       scenario.node_count(), effective.steps});

  std::vector<RoutingTaskResult> results(static_cast<std::size_t>(runs));
  parallel_for(
      results.size(),
      [&](std::size_t r) {
        obs::ObsRunScope scope(slots[r]);
        RoutingTaskConfig run_config = effective;
        snapshot::RunCheckpointPort port;
        if (checkpointer) {
          port = checkpointer->port(r);
          run_config.checkpoint = &port;
        }
        results[r] = run_routing_task(
            scenario, run_config,
            Rng(run_seed_base + static_cast<std::uint64_t>(r)));
      },
      static_cast<std::size_t>(threads));

  obs::merge_and_write(slots, obs, run_seed_base, runs, threads);

  // Combine in run-index order — the exact aggregation the serial loop
  // performed, so summaries are bit-identical at every thread count.
  RoutingSummary summary;
  summary.runs = runs;
  for (const auto& result : results) {
    summary.mean_connectivity.add(result.mean_connectivity);
    summary.window_stddev.add(result.stddev_connectivity);
    summary.connectivity.add(result.connectivity);
    if (!result.oracle.empty()) summary.oracle.add(result.oracle);
  }
  return summary;
}

}  // namespace agentnet
