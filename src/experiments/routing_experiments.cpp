#include "experiments/routing_experiments.hpp"

#include "common/error.hpp"

namespace agentnet {

RoutingSummary run_routing_experiment(const RoutingScenario& scenario,
                                      const RoutingTaskConfig& task,
                                      int runs,
                                      std::uint64_t run_seed_base) {
  AGENTNET_REQUIRE(runs >= 1, "need at least one run");
  RoutingSummary summary;
  summary.runs = runs;
  for (int r = 0; r < runs; ++r) {
    RoutingTaskResult result = run_routing_task(
        scenario, task, Rng(run_seed_base + static_cast<std::uint64_t>(r)));
    summary.mean_connectivity.add(result.mean_connectivity);
    summary.window_stddev.add(result.stddev_connectivity);
    summary.connectivity.add(result.connectivity);
    if (!result.oracle.empty()) summary.oracle.add(result.oracle);
  }
  return summary;
}

}  // namespace agentnet
