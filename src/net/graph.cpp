#include "net/graph.hpp"

#include <algorithm>

namespace agentnet {

Graph::Graph(std::size_t node_count) : adjacency_(node_count) {}

bool Graph::add_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  if (u == v) return false;
  auto& adj = adjacency_[u];
  auto it = std::lower_bound(adj.begin(), adj.end(), v);
  if (it != adj.end() && *it == v) return false;
  adj.insert(it, v);
  ++edge_count_;
  return true;
}

void Graph::add_undirected_edge(NodeId u, NodeId v) {
  add_edge(u, v);
  add_edge(v, u);
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  auto& adj = adjacency_[u];
  auto it = std::lower_bound(adj.begin(), adj.end(), v);
  if (it == adj.end() || *it != v) return false;
  adj.erase(it);
  --edge_count_;
  return true;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  const auto& adj = adjacency_[u];
  return std::binary_search(adj.begin(), adj.end(), v);
}

std::span<const NodeId> Graph::out_neighbors(NodeId u) const {
  check_node(u);
  return adjacency_[u];
}

std::size_t Graph::in_degree(NodeId u) const {
  check_node(u);
  std::size_t count = 0;
  for (const auto& adj : adjacency_)
    if (std::binary_search(adj.begin(), adj.end(), u)) ++count;
  return count;
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(edge_count_);
  for (NodeId u = 0; u < adjacency_.size(); ++u)
    for (NodeId v : adjacency_[u]) out.push_back({u, v});
  return out;
}

void Graph::clear_edges() {
  for (auto& adj : adjacency_) adj.clear();
  edge_count_ = 0;
}

}  // namespace agentnet
