#include "net/graph.hpp"

#include <algorithm>

namespace agentnet {

Graph::Graph(std::size_t node_count) : adjacency_(node_count) {}

bool Graph::add_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  if (u == v) return false;
  auto& adj = adjacency_[u];
  auto it = std::lower_bound(adj.begin(), adj.end(), v);
  if (it != adj.end() && *it == v) return false;
  adj.insert(it, v);
  ++edge_count_;
  return true;
}

void Graph::add_undirected_edge(NodeId u, NodeId v) {
  add_edge(u, v);
  add_edge(v, u);
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  auto& adj = adjacency_[u];
  auto it = std::lower_bound(adj.begin(), adj.end(), v);
  if (it == adj.end() || *it != v) return false;
  adj.erase(it);
  --edge_count_;
  return true;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  const auto& adj = adjacency_[u];
  return std::binary_search(adj.begin(), adj.end(), v);
}

std::span<const NodeId> Graph::out_neighbors(NodeId u) const {
  check_node(u);
  return adjacency_[u];
}

std::size_t Graph::in_degree(NodeId u) const {
  check_node(u);
  std::size_t count = 0;
  for (const auto& adj : adjacency_)
    if (std::binary_search(adj.begin(), adj.end(), u)) ++count;
  return count;
}

std::vector<std::size_t> Graph::in_degrees() const {
  std::vector<std::size_t> out;
  in_degrees(out);
  return out;
}

void Graph::in_degrees(std::vector<std::size_t>& out) const {
  out.assign(adjacency_.size(), 0);
  for (const auto& adj : adjacency_)
    for (NodeId v : adj) ++out[v];
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(edge_count_);
  for (NodeId u = 0; u < adjacency_.size(); ++u)
    for (NodeId v : adjacency_[u]) out.push_back({u, v});
  return out;
}

void Graph::clear_edges() {
  for (auto& adj : adjacency_) adj.clear();
  edge_count_ = 0;
}

void Graph::reset(std::size_t node_count) {
  // resize keeps the surviving inner vectors (and their capacity); clearing
  // them drops the edges without freeing anything.
  adjacency_.resize(node_count);
  for (auto& adj : adjacency_) adj.clear();
  edge_count_ = 0;
}

void Graph::assign_out_edges(NodeId u,
                             std::span<const NodeId> sorted_neighbors) {
  check_node(u);
  auto& adj = adjacency_[u];
  edge_count_ -= adj.size();
  adj.assign(sorted_neighbors.begin(), sorted_neighbors.end());
  edge_count_ += adj.size();
#ifndef NDEBUG
  for (std::size_t i = 0; i < adj.size(); ++i) {
    AGENTNET_ASSERT_MSG(adj[i] != u, "self-loop in assigned adjacency");
    AGENTNET_ASSERT_MSG(adj[i] < adjacency_.size(), "neighbor out of range");
    AGENTNET_ASSERT_MSG(i == 0 || adj[i - 1] < adj[i],
                        "assigned adjacency must be strictly ascending");
  }
#endif
}

void Graph::transposed_into(Graph& out) const {
  out.reset(adjacency_.size());
  // Counting pass: size each reversed adjacency up front so the append
  // pass below never reallocates mid-build.
  const std::vector<std::size_t> degs = in_degrees();
  for (NodeId v = 0; v < adjacency_.size(); ++v)
    out.adjacency_[v].reserve(degs[v]);
  for (NodeId u = 0; u < adjacency_.size(); ++u)
    for (NodeId v : adjacency_[u]) out.adjacency_[v].push_back(u);
  // Sources were visited in ascending order, so every reversed adjacency is
  // already sorted — no per-edge insertion sort.
  out.edge_count_ = edge_count_;
}

std::size_t Graph::heap_bytes() const {
  std::size_t bytes = adjacency_.capacity() * sizeof(adjacency_[0]);
  for (const auto& row : adjacency_)
    bytes += row.capacity() * sizeof(NodeId);
  return bytes;
}

void CsrView::rebuild_from(const Graph& graph) {
  rebuild_padded_from(graph, 0);
}

void CsrView::rebuild_padded_from(const Graph& graph,
                                  std::uint32_t row_slack) {
  const std::size_t n = graph.node_count();
  // Per-row capacity = degree + slack; slot layout must stay within the
  // u32 start offsets.
  AGENTNET_REQUIRE(graph.edge_count() + n * std::size_t{row_slack} <
                       static_cast<std::size_t>(UINT32_MAX),
                   "graph too large for u32 CSR offsets");
  starts_.resize(n + 1);
  lens_.resize(n);
  targets_.clear();
  targets_.reserve(graph.edge_count() + n * row_slack);
  starts_[0] = 0;
  for (NodeId u = 0; u < n; ++u) {
    const auto nbrs = graph.out_neighbors(u);
    targets_.insert(targets_.end(), nbrs.begin(), nbrs.end());
    lens_[u] = static_cast<std::uint32_t>(nbrs.size());
    targets_.resize(targets_.size() + row_slack, kInvalidNode);
    starts_[u + 1] = static_cast<std::uint32_t>(targets_.size());
  }
  edge_count_ = graph.edge_count();
}

bool CsrView::patch_row(NodeId u, std::span<const NodeId> sorted_neighbors) {
  AGENTNET_ASSERT_MSG(u < lens_.size(), "node id out of range");
  const std::uint32_t cap = starts_[u + 1] - starts_[u];
  if (sorted_neighbors.size() > cap) return false;  // caller re-freezes
  std::copy(sorted_neighbors.begin(), sorted_neighbors.end(),
            targets_.begin() + starts_[u]);
  edge_count_ += sorted_neighbors.size();
  edge_count_ -= lens_[u];
  lens_[u] = static_cast<std::uint32_t>(sorted_neighbors.size());
  return true;
}

bool operator==(const CsrView& a, const CsrView& b) {
  if (a.lens_.size() != b.lens_.size() || a.edge_count_ != b.edge_count_)
    return false;
  for (NodeId u = 0; u < a.lens_.size(); ++u) {
    const auto ra = a.out_neighbors(u);
    const auto rb = b.out_neighbors(u);
    if (!std::equal(ra.begin(), ra.end(), rb.begin(), rb.end())) return false;
  }
  return true;
}

bool CsrView::has_edge(NodeId u, NodeId v) const {
  const auto nbrs = out_neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

}  // namespace agentnet
