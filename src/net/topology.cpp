#include "net/topology.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel_for.hpp"

namespace agentnet {

TopologyBuilder::TopologyBuilder(Aabb bounds, double max_range,
                                 LinkPolicy policy)
    : grid_(bounds, std::max(max_range, 1e-9)),
      policy_(policy),
      max_range_(max_range) {
  AGENTNET_REQUIRE(max_range > 0.0, "max_range must be > 0");
}

Graph TopologyBuilder::build(const std::vector<Vec2>& positions,
                             const std::vector<double>& ranges) {
  Graph graph;
  build_into(graph, positions, ranges);
  return graph;
}

void TopologyBuilder::gather_row_into(NodeId u,
                                      const std::vector<Vec2>& positions,
                                      const std::vector<double>& ranges,
                                      std::vector<NodeId>& out) const {
  AGENTNET_REQUIRE(ranges[u] <= max_range_ * (1.0 + 1e-12),
                   "effective range exceeds builder max_range");
  // Query by this node's own reach; for symmetric policies the pair rule
  // is evaluated per candidate.
  const double query_radius =
      policy_ == LinkPolicy::kSymmetricOr ? max_range_ : ranges[u];
  out.clear();
  grid_.for_each_within(positions[u], query_radius, [&](std::size_t v) {
    if (v == u) return;
    const double d2 = distance2(positions[u], positions[v]);
    const double ru2 = ranges[u] * ranges[u];
    const double rv2 = ranges[v] * ranges[v];
    switch (policy_) {
      case LinkPolicy::kDirected:
        if (d2 <= ru2) out.push_back(static_cast<NodeId>(v));
        break;
      case LinkPolicy::kSymmetricAnd:
        if (d2 <= ru2 && d2 <= rv2) out.push_back(static_cast<NodeId>(v));
        break;
      case LinkPolicy::kSymmetricOr:
        if (d2 <= ru2 || d2 <= rv2) out.push_back(static_cast<NodeId>(v));
        break;
    }
  });
  // One sort per node replaces a per-edge insertion sort; the accepted set
  // has no duplicates (each point lives in exactly one grid cell).
  std::sort(out.begin(), out.end());
}

void TopologyBuilder::build_into(Graph& graph,
                                 const std::vector<Vec2>& positions,
                                 const std::vector<double>& ranges) {
  AGENTNET_REQUIRE(positions.size() == ranges.size(),
                   "positions/ranges size mismatch");
  graph.reset(positions.size());
  grid_.rebuild(positions);
  for (std::size_t u = 0; u < positions.size(); ++u) {
    gather_row(static_cast<NodeId>(u), positions, ranges);
    graph.assign_out_edges(static_cast<NodeId>(u), scratch_);
  }
}

bool TopologyBuilder::update_into(Graph& graph, std::span<const NodeId> dirty,
                                  const std::vector<Vec2>& positions,
                                  const std::vector<double>& ranges) {
  return update_into(graph, dirty, positions, ranges, UpdateOptions{});
}

bool TopologyBuilder::update_into(Graph& graph, std::span<const NodeId> dirty,
                                  const std::vector<Vec2>& positions,
                                  const std::vector<double>& ranges,
                                  const UpdateOptions& options) {
  const std::size_t n = positions.size();
  AGENTNET_REQUIRE(positions.size() == ranges.size(),
                   "positions/ranges size mismatch");
  AGENTNET_REQUIRE(graph.node_count() == n && grid_.size() == n,
                   "update_into needs the previously built graph/grid");
  bool changed = false;
  if (options.touched_rows) options.touched_rows->clear();
  if (dirty_mask_.size() < n) dirty_mask_.resize(n, 0);
  for (NodeId u : dirty) {
    AGENTNET_ASSERT(u < n);
    dirty_mask_[u] = 1;
  }

  // In-edge candidates around each moved node's *old* position must be
  // collected before the grid forgets it. Only the directed policy needs
  // them: symmetric rows mirror their own diff below. Clean sources only —
  // a dirty source's whole row is recomputed anyway.
  moved_.clear();
  pairs_.clear();
  for (NodeId u : dirty) {
    const Vec2 old_pos = grid_.position(u);
    if (old_pos == positions[u]) continue;
    moved_.push_back(u);
    if (policy_ == LinkPolicy::kDirected) {
      grid_.for_each_within(old_pos, max_range_, [&](std::size_t v) {
        if (v != u && !dirty_mask_[v])
          pairs_.push_back({static_cast<NodeId>(v), u});
      });
    }
  }
  // Bring the grid to the new snapshot, then gather against it.
  for (NodeId u : moved_) grid_.move(u, positions[u]);

  // Optionally pre-gather every dirty row in parallel: each index writes
  // its own slot and the grid/positions/ranges snapshot is frozen for the
  // whole phase, so the rows are bit-identical to a serial gather. The
  // apply loop below then runs serially in ascending dirty order either
  // way — the determinism contract's execute-anywhere / combine-in-order
  // split (docs/ARCHITECTURE.md).
  const bool pre_gather =
      options.pool != nullptr && options.pool->size() > 1 && dirty.size() > 1;
  if (pre_gather) {
    if (row_slots_.size() < dirty.size()) row_slots_.resize(dirty.size());
    parallel_for(*options.pool, dirty.size(), [&](std::size_t i) {
      gather_row_into(dirty[i], positions, ranges, row_slots_[i]);
    });
  }

  // (a) Out-rows of dirty nodes, exactly as a full build computes them.
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    const NodeId u = dirty[i];
    if (!pre_gather) gather_row(u, positions, ranges);
    const std::vector<NodeId>& new_row = pre_gather ? row_slots_[i] : scratch_;
    const auto old_row = graph.out_neighbors(u);
    if (!std::equal(old_row.begin(), old_row.end(), new_row.begin(),
                    new_row.end())) {
      changed = true;
      if (options.touched_rows) options.touched_rows->push_back(u);
      if (policy_ != LinkPolicy::kDirected) {
        // Symmetric policies: out(u) == in(u), so the row diff tells every
        // *clean* neighbour whether its edge toward u appeared or vanished
        // (dirty neighbours recompute their own rows). Two-pointer walk
        // over the sorted old/new rows.
        std::size_t a = 0, b = 0;
        while (a < old_row.size() || b < new_row.size()) {
          if (b == new_row.size() ||
              (a < old_row.size() && old_row[a] < new_row[b])) {
            if (!dirty_mask_[old_row[a]]) {
              graph.remove_edge(old_row[a], u);
              if (options.touched_rows)
                options.touched_rows->push_back(old_row[a]);
            }
            ++a;
          } else if (a == old_row.size() || new_row[b] < old_row[a]) {
            if (!dirty_mask_[new_row[b]]) {
              graph.add_edge(new_row[b], u);
              if (options.touched_rows)
                options.touched_rows->push_back(new_row[b]);
            }
            ++b;
          } else {
            ++a;
            ++b;
          }
        }
      }
    }
    graph.assign_out_edges(u, new_row);
  }

  // (b) Directed in-edges toward moved nodes: candidates from the new
  // neighbourhood join the old-position ones collected above. Applying an
  // edge toward its already-correct state is a no-op, so duplicate
  // candidates (and pairs visited from both positions) are harmless.
  if (policy_ == LinkPolicy::kDirected) {
    for (NodeId u : moved_) {
      grid_.for_each_within(positions[u], max_range_, [&](std::size_t v) {
        if (v != u && !dirty_mask_[v])
          pairs_.push_back({static_cast<NodeId>(v), u});
      });
    }
    for (const auto& [v, u] : pairs_) {
      const bool want = distance2(positions[v], positions[u]) <=
                        ranges[v] * ranges[v];
      const bool applied =
          want ? graph.add_edge(v, u) : graph.remove_edge(v, u);
      changed |= applied;
      if (applied && options.touched_rows) options.touched_rows->push_back(v);
    }
  }
  // Clear only the bits this call set — O(|dirty|), not O(n).
  for (NodeId u : dirty) dirty_mask_[u] = 0;
  if (options.touched_rows) {
    std::sort(options.touched_rows->begin(), options.touched_rows->end());
    options.touched_rows->erase(
        std::unique(options.touched_rows->begin(),
                    options.touched_rows->end()),
        options.touched_rows->end());
  }
  return changed;
}

std::size_t TopologyBuilder::heap_bytes() const {
  std::size_t bytes = grid_.heap_bytes() +
                      scratch_.capacity() * sizeof(NodeId) +
                      dirty_mask_.capacity() +
                      moved_.capacity() * sizeof(NodeId) +
                      pairs_.capacity() * sizeof(pairs_[0]) +
                      row_slots_.capacity() * sizeof(row_slots_[0]);
  for (const auto& slot : row_slots_)
    bytes += slot.capacity() * sizeof(NodeId);
  return bytes;
}

}  // namespace agentnet
