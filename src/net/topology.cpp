#include "net/topology.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace agentnet {

TopologyBuilder::TopologyBuilder(Aabb bounds, double max_range,
                                 LinkPolicy policy)
    : grid_(bounds, std::max(max_range, 1e-9)),
      policy_(policy),
      max_range_(max_range) {
  AGENTNET_REQUIRE(max_range > 0.0, "max_range must be > 0");
}

Graph TopologyBuilder::build(const std::vector<Vec2>& positions,
                             const std::vector<double>& ranges) {
  Graph graph;
  build_into(graph, positions, ranges);
  return graph;
}

void TopologyBuilder::gather_row(NodeId u, const std::vector<Vec2>& positions,
                                 const std::vector<double>& ranges) {
  AGENTNET_REQUIRE(ranges[u] <= max_range_ * (1.0 + 1e-12),
                   "effective range exceeds builder max_range");
  // Query by this node's own reach; for symmetric policies the pair rule
  // is evaluated per candidate.
  const double query_radius =
      policy_ == LinkPolicy::kSymmetricOr ? max_range_ : ranges[u];
  scratch_.clear();
  grid_.for_each_within(positions[u], query_radius, [&](std::size_t v) {
    if (v == u) return;
    const double d2 = distance2(positions[u], positions[v]);
    const double ru2 = ranges[u] * ranges[u];
    const double rv2 = ranges[v] * ranges[v];
    switch (policy_) {
      case LinkPolicy::kDirected:
        if (d2 <= ru2) scratch_.push_back(static_cast<NodeId>(v));
        break;
      case LinkPolicy::kSymmetricAnd:
        if (d2 <= ru2 && d2 <= rv2)
          scratch_.push_back(static_cast<NodeId>(v));
        break;
      case LinkPolicy::kSymmetricOr:
        if (d2 <= ru2 || d2 <= rv2)
          scratch_.push_back(static_cast<NodeId>(v));
        break;
    }
  });
  // One sort per node replaces a per-edge insertion sort; the accepted set
  // has no duplicates (each point lives in exactly one grid cell).
  std::sort(scratch_.begin(), scratch_.end());
}

void TopologyBuilder::build_into(Graph& graph,
                                 const std::vector<Vec2>& positions,
                                 const std::vector<double>& ranges) {
  AGENTNET_REQUIRE(positions.size() == ranges.size(),
                   "positions/ranges size mismatch");
  graph.reset(positions.size());
  grid_.rebuild(positions);
  for (std::size_t u = 0; u < positions.size(); ++u) {
    gather_row(static_cast<NodeId>(u), positions, ranges);
    graph.assign_out_edges(static_cast<NodeId>(u), scratch_);
  }
}

bool TopologyBuilder::update_into(Graph& graph, std::span<const NodeId> dirty,
                                  const std::vector<Vec2>& positions,
                                  const std::vector<double>& ranges) {
  const std::size_t n = positions.size();
  AGENTNET_REQUIRE(positions.size() == ranges.size(),
                   "positions/ranges size mismatch");
  AGENTNET_REQUIRE(graph.node_count() == n && grid_.size() == n,
                   "update_into needs the previously built graph/grid");
  bool changed = false;
  dirty_mask_.assign(n, 0);
  for (NodeId u : dirty) {
    AGENTNET_ASSERT(u < n);
    dirty_mask_[u] = 1;
  }

  // In-edge candidates around each moved node's *old* position must be
  // collected before the grid forgets it. Only the directed policy needs
  // them: symmetric rows mirror their own diff below. Clean sources only —
  // a dirty source's whole row is recomputed anyway.
  moved_.clear();
  pairs_.clear();
  for (NodeId u : dirty) {
    const Vec2 old_pos = grid_.position(u);
    if (old_pos == positions[u]) continue;
    moved_.push_back(u);
    if (policy_ == LinkPolicy::kDirected) {
      grid_.for_each_within(old_pos, max_range_, [&](std::size_t v) {
        if (v != u && !dirty_mask_[v])
          pairs_.push_back({static_cast<NodeId>(v), u});
      });
    }
  }
  // Bring the grid to the new snapshot, then gather against it.
  for (NodeId u : moved_) grid_.move(u, positions[u]);

  // (a) Out-rows of dirty nodes, exactly as a full build computes them.
  for (NodeId u : dirty) {
    gather_row(u, positions, ranges);
    const auto old_row = graph.out_neighbors(u);
    if (!std::equal(old_row.begin(), old_row.end(), scratch_.begin(),
                    scratch_.end())) {
      changed = true;
      if (policy_ != LinkPolicy::kDirected) {
        // Symmetric policies: out(u) == in(u), so the row diff tells every
        // *clean* neighbour whether its edge toward u appeared or vanished
        // (dirty neighbours recompute their own rows). Two-pointer walk
        // over the sorted old/new rows.
        std::size_t a = 0, b = 0;
        while (a < old_row.size() || b < scratch_.size()) {
          if (b == scratch_.size() ||
              (a < old_row.size() && old_row[a] < scratch_[b])) {
            if (!dirty_mask_[old_row[a]]) graph.remove_edge(old_row[a], u);
            ++a;
          } else if (a == old_row.size() || scratch_[b] < old_row[a]) {
            if (!dirty_mask_[scratch_[b]]) graph.add_edge(scratch_[b], u);
            ++b;
          } else {
            ++a;
            ++b;
          }
        }
      }
    }
    graph.assign_out_edges(u, scratch_);
  }

  // (b) Directed in-edges toward moved nodes: candidates from the new
  // neighbourhood join the old-position ones collected above. Applying an
  // edge toward its already-correct state is a no-op, so duplicate
  // candidates (and pairs visited from both positions) are harmless.
  if (policy_ == LinkPolicy::kDirected) {
    for (NodeId u : moved_) {
      grid_.for_each_within(positions[u], max_range_, [&](std::size_t v) {
        if (v != u && !dirty_mask_[v])
          pairs_.push_back({static_cast<NodeId>(v), u});
      });
    }
    for (const auto& [v, u] : pairs_) {
      const bool want = distance2(positions[v], positions[u]) <=
                        ranges[v] * ranges[v];
      if (want)
        changed |= graph.add_edge(v, u);
      else
        changed |= graph.remove_edge(v, u);
    }
  }
  return changed;
}

}  // namespace agentnet
