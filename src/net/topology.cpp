#include "net/topology.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace agentnet {

TopologyBuilder::TopologyBuilder(Aabb bounds, double max_range,
                                 LinkPolicy policy)
    : grid_(bounds, std::max(max_range, 1e-9)),
      policy_(policy),
      max_range_(max_range) {
  AGENTNET_REQUIRE(max_range > 0.0, "max_range must be > 0");
}

Graph TopologyBuilder::build(const std::vector<Vec2>& positions,
                             const std::vector<double>& ranges) {
  Graph graph;
  build_into(graph, positions, ranges);
  return graph;
}

void TopologyBuilder::build_into(Graph& graph,
                                 const std::vector<Vec2>& positions,
                                 const std::vector<double>& ranges) {
  AGENTNET_REQUIRE(positions.size() == ranges.size(),
                   "positions/ranges size mismatch");
  graph.reset(positions.size());
  grid_.rebuild(positions);
  for (std::size_t u = 0; u < positions.size(); ++u) {
    AGENTNET_REQUIRE(ranges[u] <= max_range_ * (1.0 + 1e-12),
                     "effective range exceeds builder max_range");
    // Query by this node's own reach; for symmetric policies the pair rule
    // is evaluated per candidate.
    const double query_radius =
        policy_ == LinkPolicy::kSymmetricOr ? max_range_ : ranges[u];
    scratch_.clear();
    grid_.for_each_within(positions[u], query_radius, [&](std::size_t v) {
      if (v == u) return;
      const double d2 = distance2(positions[u], positions[v]);
      const double ru2 = ranges[u] * ranges[u];
      const double rv2 = ranges[v] * ranges[v];
      switch (policy_) {
        case LinkPolicy::kDirected:
          if (d2 <= ru2) scratch_.push_back(static_cast<NodeId>(v));
          break;
        case LinkPolicy::kSymmetricAnd:
          if (d2 <= ru2 && d2 <= rv2)
            scratch_.push_back(static_cast<NodeId>(v));
          break;
        case LinkPolicy::kSymmetricOr:
          if (d2 <= ru2 || d2 <= rv2)
            scratch_.push_back(static_cast<NodeId>(v));
          break;
      }
    });
    // One sort per node replaces a per-edge insertion sort; the accepted set
    // has no duplicates (each point lives in exactly one grid cell).
    std::sort(scratch_.begin(), scratch_.end());
    graph.assign_out_edges(static_cast<NodeId>(u), scratch_);
  }
}

}  // namespace agentnet
