#include "net/link_noise.hpp"

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace agentnet {

namespace {
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

LinkFlapper::LinkFlapper(double drop_probability, std::size_t persistence,
                         std::uint64_t seed)
    : drop_probability_(drop_probability),
      persistence_(persistence),
      seed_(seed) {
  AGENTNET_REQUIRE(drop_probability >= 0.0 && drop_probability < 1.0,
                   "drop probability must be in [0,1)");
  AGENTNET_REQUIRE(persistence >= 1, "persistence must be >= 1");
}

bool LinkFlapper::down(NodeId u, NodeId v, std::size_t step) const {
  if (drop_probability_ <= 0.0) return false;
  const std::uint64_t window = step / persistence_;
  std::uint64_t h = seed_ ^ 0x9e3779b97f4a7c15ULL;
  h = mix64(h ^ u);
  h = mix64(h ^ (static_cast<std::uint64_t>(v) << 32));
  h = mix64(h ^ window);
  const double u01 =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform in [0,1)
  return u01 < drop_probability_;
}

void LinkFlapper::apply(Graph& graph, std::size_t step) const {
  if (drop_probability_ <= 0.0) return;
  for (const Edge& e : graph.edges())
    if (down(e.from, e.to, step)) {
      graph.remove_edge(e.from, e.to);
      AGENTNET_COUNT(kLinkFlaps);
    }
}

}  // namespace agentnet
