#include "net/generators.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "mobility/mobility.hpp"
#include "net/metrics.hpp"

namespace agentnet {

GeneratedNetwork random_geometric_network(const GeometricNetworkParams& params,
                                          double range_multiplier, Rng& rng) {
  AGENTNET_REQUIRE(params.node_count >= 2, "need at least two nodes");
  AGENTNET_REQUIRE(range_multiplier > 0.0, "range multiplier must be > 0");
  AGENTNET_REQUIRE(
      params.min_range_factor > 0.0 && params.min_range_factor <= 1.0,
      "min_range_factor must be in (0, 1]");
  GeneratedNetwork net;
  net.bounds = params.bounds;
  net.policy = params.policy;
  net.positions = random_positions(params.node_count, params.bounds, rng);
  net.base_ranges.resize(params.node_count);
  for (auto& r : net.base_ranges)
    r = range_multiplier * rng.uniform_real(params.min_range_factor, 1.0);
  TopologyBuilder builder(params.bounds, range_multiplier, params.policy);
  net.graph = builder.build(net.positions, net.base_ranges);
  return net;
}

namespace {

// Rebuilds the graph of `net` with all base ranges scaled by `scale`
// relative to their unit draw. Keeps placement and per-node draws fixed so
// the multiplier search is monotone.
struct ScaledBuilder {
  const GeometricNetworkParams& params;
  std::vector<Vec2> positions;
  std::vector<double> unit_ranges;  // per-node uniform draws in (0, 1]

  GeneratedNetwork build(double multiplier) const {
    GeneratedNetwork net;
    net.bounds = params.bounds;
    net.policy = params.policy;
    net.positions = positions;
    net.base_ranges.resize(unit_ranges.size());
    for (std::size_t i = 0; i < unit_ranges.size(); ++i)
      net.base_ranges[i] = multiplier * unit_ranges[i];
    TopologyBuilder builder(params.bounds, multiplier, params.policy);
    net.graph = builder.build(net.positions, net.base_ranges);
    return net;
  }
};

bool connectivity_ok(const GeneratedNetwork& net, bool require_strong) {
  return require_strong ? is_strongly_connected(net.graph)
                        : is_weakly_connected(net.graph);
}

}  // namespace

GeneratedNetwork generate_target_edge_network(const TargetEdgeParams& params,
                                              std::uint64_t seed) {
  AGENTNET_REQUIRE(params.target_edges > 0, "target_edges must be > 0");
  AGENTNET_REQUIRE(params.tolerance > 0.0, "tolerance must be > 0");
  Rng master(seed);
  const double arena_diag =
      std::hypot(params.geometry.bounds.width(),
                 params.geometry.bounds.height());
  for (int attempt = 0; attempt < params.max_attempts; ++attempt) {
    Rng rng = master.fork(static_cast<std::uint64_t>(attempt) + 1);
    ScaledBuilder scaled{
        params.geometry,
        random_positions(params.geometry.node_count, params.geometry.bounds,
                         rng),
        {}};
    scaled.unit_ranges.resize(params.geometry.node_count);
    for (auto& r : scaled.unit_ranges)
      r = rng.uniform_real(params.geometry.min_range_factor, 1.0);

    // Edge count grows monotonically with the multiplier: bisect.
    double lo = arena_diag * 1e-4;
    double hi = arena_diag;
    GeneratedNetwork best = scaled.build(hi);
    if (best.graph.edge_count() < params.target_edges) continue;  // too sparse
    for (int iter = 0; iter < 60; ++iter) {
      const double mid = 0.5 * (lo + hi);
      GeneratedNetwork candidate = scaled.build(mid);
      if (candidate.graph.edge_count() >= params.target_edges) {
        hi = mid;
        best = std::move(candidate);
      } else {
        lo = mid;
      }
      const double err =
          std::abs(static_cast<double>(best.graph.edge_count()) -
                   static_cast<double>(params.target_edges)) /
          static_cast<double>(params.target_edges);
      if (err <= params.tolerance && hi - lo < arena_diag * 1e-6) break;
    }
    const double err = std::abs(static_cast<double>(best.graph.edge_count()) -
                                static_cast<double>(params.target_edges)) /
                       static_cast<double>(params.target_edges);
    if (err > params.tolerance) continue;
    if (!connectivity_ok(best, params.require_strongly_connected)) {
      AGENTNET_DEBUG() << "attempt " << attempt
                       << ": edge target met but not connected, retrying";
      continue;
    }
    AGENTNET_INFO() << "generated network: " << best.graph.node_count()
                    << " nodes, " << best.graph.edge_count()
                    << " edges (target " << params.target_edges << ") after "
                    << (attempt + 1) << " attempt(s)";
    return best;
  }
  throw ConfigError(
      "generate_target_edge_network: no connected network hit the edge "
      "target; relax tolerance or adjust node count / bounds");
}

Graph erdos_renyi_digraph(std::size_t node_count, std::size_t arc_count,
                          std::uint64_t seed, int max_attempts) {
  AGENTNET_REQUIRE(node_count >= 2, "need at least two nodes");
  AGENTNET_REQUIRE(arc_count <= node_count * (node_count - 1),
                   "more arcs than the complete digraph holds");
  Rng master(seed);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Rng rng = master.fork(static_cast<std::uint64_t>(attempt) + 1);
    Graph g(node_count);
    while (g.edge_count() < arc_count) {
      const NodeId u = static_cast<NodeId>(rng.index(node_count));
      const NodeId v = static_cast<NodeId>(rng.index(node_count));
      g.add_edge(u, v);
    }
    if (is_strongly_connected(g)) return g;
  }
  throw ConfigError(
      "erdos_renyi_digraph: no strongly connected draw at this density");
}

Graph preferential_attachment_graph(std::size_t node_count,
                                    std::size_t edges_per_node,
                                    std::uint64_t seed) {
  AGENTNET_REQUIRE(edges_per_node >= 1, "need >= 1 edge per node");
  AGENTNET_REQUIRE(node_count > edges_per_node,
                   "need more nodes than edges per node");
  Rng rng(seed);
  Graph g(node_count);
  // Seed clique over the first m+1 nodes.
  std::vector<NodeId> endpoint_pool;  // one entry per edge endpoint
  for (NodeId u = 0; u <= edges_per_node; ++u)
    for (NodeId v = static_cast<NodeId>(u + 1); v <= edges_per_node; ++v) {
      g.add_undirected_edge(u, v);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  for (NodeId newcomer = static_cast<NodeId>(edges_per_node + 1);
       newcomer < node_count; ++newcomer) {
    std::vector<NodeId> chosen;
    while (chosen.size() < edges_per_node) {
      // Sampling an endpoint uniformly is sampling ∝ degree.
      const NodeId candidate =
          endpoint_pool[rng.index(endpoint_pool.size())];
      if (std::find(chosen.begin(), chosen.end(), candidate) ==
          chosen.end())
        chosen.push_back(candidate);
    }
    for (NodeId target : chosen) {
      g.add_undirected_edge(newcomer, target);
      endpoint_pool.push_back(newcomer);
      endpoint_pool.push_back(target);
    }
  }
  return g;
}

GeneratedNetwork paper_mapping_network(std::uint64_t seed) {
  TargetEdgeParams params;
  params.geometry.node_count = 300;
  params.geometry.bounds = {{0.0, 0.0}, {1000.0, 1000.0}};
  params.geometry.min_range_factor = 0.7;
  params.geometry.policy = LinkPolicy::kDirected;
  // The paper inherits "300 nodes with 2164 edges" from Minar et al., whose
  // network was symmetric — 2164 bidirectional links. In this directed
  // environment each link is up to two arcs, so we target 4328 directed
  // edges (mean out-degree ≈ 14.4). Targeting 2164 *arcs* instead would put
  // the geometric graph near its connectivity threshold, where random-walk
  // cover times blow up and no algorithm ordering from the paper survives.
  params.target_edges = 2 * 2164;
  return generate_target_edge_network(params, seed);
}

}  // namespace agentnet
