// Directed graph with per-node sorted adjacency.
//
// The paper's environments make the topology a directed graph (heterogeneous
// battery-degraded radio ranges ⇒ A can hear B without B hearing A). Node
// counts are in the hundreds and topologies are rebuilt wholesale each step
// under mobility, so the representation favours simplicity and cache-friendly
// iteration over incremental update tricks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace agentnet {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// A directed edge u→v.
struct Edge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t node_count);

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Adds u→v if absent; returns true when the edge was new. Self-loops are
  /// rejected (a radio does not link to itself).
  bool add_edge(NodeId u, NodeId v);
  /// Adds u→v and v→u.
  void add_undirected_edge(NodeId u, NodeId v);
  /// Removes u→v if present; returns true when an edge was removed.
  bool remove_edge(NodeId u, NodeId v);

  bool has_edge(NodeId u, NodeId v) const;
  /// Out-neighbours of u in ascending id order.
  std::span<const NodeId> out_neighbors(NodeId u) const;
  std::size_t out_degree(NodeId u) const { return out_neighbors(u).size(); }
  std::size_t in_degree(NodeId u) const;

  /// All edges in (from, to) lexicographic order.
  std::vector<Edge> edges() const;

  /// Drops all edges, keeps the node set.
  void clear_edges();

  friend bool operator==(const Graph&, const Graph&) = default;

 private:
  void check_node(NodeId u) const {
    AGENTNET_ASSERT_MSG(u < adjacency_.size(), "node id out of range");
  }

  std::vector<std::vector<NodeId>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace agentnet
