// Directed graph with per-node sorted adjacency.
//
// The paper's environments make the topology a directed graph (heterogeneous
// battery-degraded radio ranges ⇒ A can hear B without B hearing A). Node
// counts are in the hundreds and topologies are rebuilt wholesale each step
// under mobility, so the representation favours simplicity and cache-friendly
// iteration over incremental update tricks. For rebuild-every-step callers,
// reset() + assign_out_edges() recycle the per-node storage, and CsrView
// freezes a graph into two flat arrays for read-heavy consumers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "snapshot/bytes.hpp"

namespace agentnet {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// A directed edge u→v.
struct Edge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t node_count);

  std::size_t node_count() const { return adjacency_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Adds u→v if absent; returns true when the edge was new. Self-loops are
  /// rejected (a radio does not link to itself).
  bool add_edge(NodeId u, NodeId v);
  /// Adds u→v and v→u.
  void add_undirected_edge(NodeId u, NodeId v);
  /// Removes u→v if present; returns true when an edge was removed.
  bool remove_edge(NodeId u, NodeId v);

  bool has_edge(NodeId u, NodeId v) const;
  /// Out-neighbours of u in ascending id order.
  std::span<const NodeId> out_neighbors(NodeId u) const;
  std::size_t out_degree(NodeId u) const { return out_neighbors(u).size(); }
  /// O(V·log d) single-node scan; when you need every node's in-degree,
  /// use in_degrees() — one pass over the edges instead of V scans.
  std::size_t in_degree(NodeId u) const;
  /// All in-degrees in one pass over the adjacency (O(V+E)).
  std::vector<std::size_t> in_degrees() const;
  /// As above, reusing caller storage.
  void in_degrees(std::vector<std::size_t>& out) const;

  /// All edges in (from, to) lexicographic order.
  std::vector<Edge> edges() const;

  /// Drops all edges, keeps the node set.
  void clear_edges();

  /// Resizes to `node_count` nodes with no edges, recycling each node's
  /// adjacency capacity — the rebuild-every-step entry point.
  void reset(std::size_t node_count);

  /// Replaces u's out-list with `sorted_neighbors` (strictly ascending, no
  /// self-loop), appending into recycled storage. Pairs with reset():
  /// TopologyBuilder writes each adjacency append-only instead of
  /// insertion-sorting edge by edge.
  void assign_out_edges(NodeId u, std::span<const NodeId> sorted_neighbors);

  /// Writes the transpose into `out` (recycling its storage): counting pass
  /// over in_degrees() to reserve, then an append pass that emits each
  /// reversed adjacency already sorted.
  void transposed_into(Graph& out) const;

  friend bool operator==(const Graph&, const Graph&) = default;

  /// Heap footprint of the adjacency storage (bytes/node accounting): row
  /// headers plus every row's reserved capacity. O(V) walk — bench/report
  /// use, not per-step hot path.
  std::size_t heap_bytes() const;

  /// Checkpoint support: node count plus every adjacency row. load_state
  /// re-derives edge_count_ from the rows and validates the strictly-
  /// ascending, no-self-loop row invariant.
  void save_state(snapshot::ByteWriter& w) const {
    w.size(adjacency_.size());
    for (const auto& row : adjacency_) w.pod_vec(row);
  }
  void load_state(snapshot::ByteReader& r) {
    const std::size_t n = r.counted(8);
    reset(n);
    std::vector<NodeId> row;
    for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
      r.pod_vec(row);
      for (std::size_t k = 0; k < row.size(); ++k) {
        AGENTNET_REQUIRE(row[k] < n && row[k] != u &&
                             (k == 0 || row[k - 1] < row[k]),
                         "snapshot: malformed adjacency row");
      }
      assign_out_edges(u, row);
    }
  }

 private:
  void check_node(NodeId u) const {
    AGENTNET_ASSERT_MSG(u < adjacency_.size(), "node id out of range");
  }

  std::vector<std::vector<NodeId>> adjacency_;
  std::size_t edge_count_ = 0;
};

/// A frozen CSR snapshot of a Graph: one starts array, one lengths array,
/// one targets array. Read-heavy per-step consumers (BFS, connectivity
/// walks, coverage measurement) iterate this instead of the
/// vector-of-vectors — the whole edge set lives in contiguous allocations,
/// and rebuild_from() recycles them across steps. The neighbour order is
/// exactly the Graph's (ascending), so any algorithm gives bit-identical
/// results on either representation.
///
/// Rows may carry slack capacity: rebuild_padded_from() reserves headroom
/// after each row so patch_row() can replace a single row in place without
/// touching the rest of the layout. The sharded world (docs/PERFORMANCE.md,
/// "Sharded world") uses this to keep the CSR current at per-dirty-row cost
/// instead of refreezing all n+E entries whenever the edge set changes.
/// Equality is logical (same rows in the same order), independent of slack.
class CsrView {
 public:
  CsrView() = default;
  explicit CsrView(const Graph& graph) { rebuild_from(graph); }

  /// Re-freezes from `graph` with no slack, reusing the arrays.
  void rebuild_from(const Graph& graph);

  /// Re-freezes from `graph` reserving `row_slack` spare target slots after
  /// each row (plus proportional headroom for dense rows) so subsequent
  /// patch_row() calls usually fit in place.
  void rebuild_padded_from(const Graph& graph, std::uint32_t row_slack = 8);

  /// Replaces u's row with `sorted_neighbors` in place. Returns false —
  /// leaving the view unchanged — when the new row exceeds the slot's
  /// capacity; the caller then re-freezes via rebuild_padded_from().
  bool patch_row(NodeId u, std::span<const NodeId> sorted_neighbors);

  std::size_t node_count() const { return lens_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  std::span<const NodeId> out_neighbors(NodeId u) const {
    AGENTNET_ASSERT_MSG(u < lens_.size(), "node id out of range");
    return {targets_.data() + starts_[u], lens_[u]};
  }
  std::size_t out_degree(NodeId u) const { return out_neighbors(u).size(); }
  bool has_edge(NodeId u, NodeId v) const;

  /// Logical equality: same node count and per-row neighbour sequences.
  /// Slack layout is invisible — a padded view equals its dense twin.
  friend bool operator==(const CsrView& a, const CsrView& b);

  /// Heap footprint of the frozen arrays (bytes/node accounting).
  std::size_t heap_bytes() const {
    return starts_.capacity() * sizeof(std::uint32_t) +
           lens_.capacity() * sizeof(std::uint32_t) +
           targets_.capacity() * sizeof(NodeId);
  }

 private:
  std::vector<std::uint32_t> starts_;  // node_count + 1; row u occupies
                                       // [starts_[u], starts_[u+1]) slots
  std::vector<std::uint32_t> lens_;    // node_count; live entries per row
  std::vector<NodeId> targets_;        // slot storage, sorted per row
  std::size_t edge_count_ = 0;
};

}  // namespace agentnet
