// Link flapping: the paper's mapping environment assumes "there will be
// some degradation on a percentage of radio links due to rely[ing] on
// battery power", making links come and go even with stationary nodes.
//
// LinkFlapper gates each directed edge by a pure hash of
// (edge, step / persistence, seed): a fraction `drop_probability` of links
// is down in any window, each link's outages are temporally persistent for
// `persistence` steps, and the whole process is deterministic with no
// carried state — replays and parallel runs see identical weather.
#pragma once

#include <cstdint>

#include "net/graph.hpp"

namespace agentnet {

class LinkFlapper {
 public:
  /// `drop_probability` in [0,1); `persistence` >= 1 steps per weather
  /// window (an outage lasts whole windows).
  LinkFlapper(double drop_probability, std::size_t persistence,
              std::uint64_t seed);

  /// True when edge u→v is down during `step`.
  bool down(NodeId u, NodeId v, std::size_t step) const;

  /// Removes all currently-down edges from `graph`.
  void apply(Graph& graph, std::size_t step) const;

  double drop_probability() const { return drop_probability_; }
  std::size_t persistence() const { return persistence_; }

 private:
  double drop_probability_;
  std::size_t persistence_;
  std::uint64_t seed_;
};

}  // namespace agentnet
