// Builds the live link graph from node positions and effective radio ranges.
#pragma once

#include <span>
#include <vector>

#include "geom/spatial_grid.hpp"
#include "geom/vec2.hpp"
#include "net/graph.hpp"

namespace agentnet {

class ThreadPool;

/// How a one-way radio reach (u hears within range(u)) becomes a link.
enum class LinkPolicy {
  kDirected,      ///< u→v iff dist ≤ range(u). The mapping environment.
  kSymmetricAnd,  ///< {u,v} iff dist ≤ min(range(u), range(v)). Routing env:
                  ///< a usable data link needs both directions.
  kSymmetricOr,   ///< {u,v} iff dist ≤ max(range(u), range(v)).
};

/// Rebuilds graphs from (positions, effective ranges). Stateless apart from
/// a reusable spatial grid (sized for the largest range it will see) and
/// per-node scratch, so build_into() on a warm builder allocates nothing.
///
/// The grid doubles as the builder's memory of the last snapshot it built:
/// update_into() patches a previously built graph by recomputing only the
/// rows touched by a dirty set, relocating the dirty points inside the grid
/// instead of rebuilding it. Outputs are bit-identical to a full rebuild
/// (docs/PERFORMANCE.md, "Incremental topology maintenance").
class TopologyBuilder {
 public:
  /// `max_range` bounds every effective range passed to build(); used only
  /// to size the grid cells.
  TopologyBuilder(Aabb bounds, double max_range, LinkPolicy policy);

  LinkPolicy policy() const { return policy_; }

  /// Computes the link graph for the given snapshot. `ranges[i]` is node
  /// i's current effective radio range. Thin wrapper over build_into().
  Graph build(const std::vector<Vec2>& positions,
              const std::vector<double>& ranges);

  /// Rebuilds `graph` in place, recycling its adjacency capacity (and the
  /// builder's grid + scratch) across steps. Each node's accepted
  /// neighbours are gathered, sorted once and written append-only — no
  /// per-edge insertion sort. Produces a Graph identical (operator==) to
  /// build()'s.
  void build_into(Graph& graph, const std::vector<Vec2>& positions,
                  const std::vector<double>& ranges);

  /// Incrementally patches `graph` — which must hold this builder's last
  /// build for the grid's current snapshot — to the new (positions, ranges)
  /// snapshot, given the sorted set of nodes whose position or range
  /// changed (`dirty`). Every clean node's inputs must be unchanged.
  ///
  /// Recomputes (a) the out-rows of dirty nodes and (b) in-edges toward
  /// dirty nodes: symmetric policies mirror the out-row diff into clean
  /// neighbours' rows; the directed policy fixes in-edges from candidates
  /// found by reverse grid queries over the max-range neighbourhoods of
  /// each moved node's old and new position. The result is bit-identical
  /// (operator==, neighbour iteration order included) to a full rebuild.
  ///
  /// Returns true when the edge set actually changed.
  bool update_into(Graph& graph, std::span<const NodeId> dirty,
                   const std::vector<Vec2>& positions,
                   const std::vector<double>& ranges);

  /// Optional behaviours for update_into(); default-constructed == the
  /// plain overload above.
  struct UpdateOptions {
    /// When set, dirty rows are gathered in parallel over this pool (one
    /// pre-allocated slot per dirty index) and applied serially in index
    /// order — bit-identical to the serial gather because each row is a
    /// pure function of the (grid, positions, ranges) snapshot.
    ThreadPool* pool = nullptr;
    /// When set, receives the sorted, deduplicated ids of every row whose
    /// stored adjacency this call modified: dirty rows that changed plus
    /// clean "halo" rows fixed up by mirror diffs / directed in-edge
    /// repair. The sharded world patches exactly these CSR rows.
    std::vector<NodeId>* touched_rows = nullptr;
  };
  bool update_into(Graph& graph, std::span<const NodeId> dirty,
                   const std::vector<Vec2>& positions,
                   const std::vector<double>& ranges,
                   const UpdateOptions& options);

  /// Heap footprint of the grid and scratch (bytes/node accounting).
  std::size_t heap_bytes() const;

 private:
  /// Fills `out` (sorted) with u's accepted out-neighbours at the grid's
  /// current snapshot.
  void gather_row_into(NodeId u, const std::vector<Vec2>& positions,
                       const std::vector<double>& ranges,
                       std::vector<NodeId>& out) const;
  void gather_row(NodeId u, const std::vector<Vec2>& positions,
                  const std::vector<double>& ranges) {
    gather_row_into(u, positions, ranges, scratch_);
  }

  SpatialGrid grid_;
  LinkPolicy policy_;
  double max_range_;
  std::vector<NodeId> scratch_;  ///< One node's accepted neighbours.
  // update_into() scratch, reused across steps. dirty_mask_ is cleared by
  // walking the previous dirty set (not an O(n) refill), so steady-state
  // update cost tracks the dirty count, not the node count.
  std::vector<char> dirty_mask_;
  std::vector<NodeId> moved_;
  std::vector<std::pair<NodeId, NodeId>> pairs_;  ///< (source, dirty target).
  std::vector<std::vector<NodeId>> row_slots_;  ///< Parallel-gather slots.
};

}  // namespace agentnet
