// Builds the live link graph from node positions and effective radio ranges.
#pragma once

#include <vector>

#include "geom/spatial_grid.hpp"
#include "geom/vec2.hpp"
#include "net/graph.hpp"

namespace agentnet {

/// How a one-way radio reach (u hears within range(u)) becomes a link.
enum class LinkPolicy {
  kDirected,      ///< u→v iff dist ≤ range(u). The mapping environment.
  kSymmetricAnd,  ///< {u,v} iff dist ≤ min(range(u), range(v)). Routing env:
                  ///< a usable data link needs both directions.
  kSymmetricOr,   ///< {u,v} iff dist ≤ max(range(u), range(v)).
};

/// Rebuilds graphs from (positions, effective ranges). Stateless apart from
/// a reusable spatial grid (sized for the largest range it will see) and
/// per-node scratch, so build_into() on a warm builder allocates nothing.
class TopologyBuilder {
 public:
  /// `max_range` bounds every effective range passed to build(); used only
  /// to size the grid cells.
  TopologyBuilder(Aabb bounds, double max_range, LinkPolicy policy);

  LinkPolicy policy() const { return policy_; }

  /// Computes the link graph for the given snapshot. `ranges[i]` is node
  /// i's current effective radio range. Thin wrapper over build_into().
  Graph build(const std::vector<Vec2>& positions,
              const std::vector<double>& ranges);

  /// Rebuilds `graph` in place, recycling its adjacency capacity (and the
  /// builder's grid + scratch) across steps. Each node's accepted
  /// neighbours are gathered, sorted once and written append-only — no
  /// per-edge insertion sort. Produces a Graph identical (operator==) to
  /// build()'s.
  void build_into(Graph& graph, const std::vector<Vec2>& positions,
                  const std::vector<double>& ranges);

 private:
  SpatialGrid grid_;
  LinkPolicy policy_;
  double max_range_;
  std::vector<NodeId> scratch_;  ///< One node's accepted neighbours.
};

}  // namespace agentnet
