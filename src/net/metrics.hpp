// Graph analysis used for generator validation, experiment sanity checks and
// tests: BFS, reachability, strong connectivity, degree statistics.
#pragma once

#include <cstddef>
#include <vector>

#include "common/agent_parallel.hpp"
#include "net/graph.hpp"

namespace agentnet {

/// Hop distance from `src` to every node following out-edges; unreachable
/// nodes get -1.
std::vector<int> bfs_distances(const Graph& graph, NodeId src);
/// CSR variant — identical result; the flat arrays are what per-step
/// measurement phases iterate.
std::vector<int> bfs_distances(const CsrView& graph, NodeId src);
/// As above, reusing caller storage for the distance array.
void bfs_distances(const CsrView& graph, NodeId src, std::vector<int>& dist);

/// Number of nodes reachable from `src` (including src).
std::size_t reachable_count(const Graph& graph, NodeId src);
std::size_t reachable_count(const CsrView& graph, NodeId src);

/// True iff every node can reach every other following edge directions.
bool is_strongly_connected(const Graph& graph);

/// True iff the graph, viewed with edge directions erased, is connected.
bool is_weakly_connected(const Graph& graph);

/// Strongly connected components (Kosaraju, iterative); returns component
/// id per node, ids dense from 0.
std::vector<int> strongly_connected_components(const Graph& graph);

/// Longest shortest-path over all ordered pairs; -1 if any pair is
/// unreachable. O(V·E) — fine at agentnet's scales.
int diameter(const Graph& graph);
/// Parallel variant: the per-root BFS sweeps fan over the agent engine with
/// per-root result slots reduced in root order — integer max, so the value
/// is identical at any thread count. Inactive engine = exact serial path.
int diameter(const Graph& graph, const AgentParallel& par);

struct DegreeStats {
  std::size_t min_out = 0;
  std::size_t max_out = 0;
  double mean_out = 0.0;
  std::size_t min_in = 0;
  std::size_t max_in = 0;
  /// Fraction of directed edges u→v whose reverse v→u also exists.
  double symmetry = 0.0;
};

DegreeStats degree_stats(const Graph& graph);

/// Graph with every edge reversed.
Graph reversed(const Graph& graph);

/// Global clustering coefficient of the undirected view: 3×triangles /
/// open-or-closed triplets; 0 for triangle-free graphs. Geometric radio
/// graphs cluster heavily, Erdős–Rényi graphs barely — used to verify
/// generator families behave like their textbook selves.
double clustering_coefficient(const Graph& graph);

/// Histogram of shortest-path hop counts from `src` (index = hops, value =
/// node count); unreachable nodes are excluded. hist[0] == 1 (src itself).
std::vector<std::size_t> hop_histogram(const Graph& graph, NodeId src);

/// Mean shortest-path length over all ordered reachable pairs; -1 when no
/// pair is reachable. O(V·E).
double mean_shortest_path(const Graph& graph);
/// Parallel variant: per-root BFS fan-out with integer (pairs, total) slots
/// summed in root order — bit-identical to the serial value.
double mean_shortest_path(const Graph& graph, const AgentParallel& par);

}  // namespace agentnet
