// Network generators.
//
// The paper evaluates mapping on "a single connected network consisting of
// 300 nodes with 2164 edges". The authors' concrete graph is unpublished, so
// we regenerate the same *class* of network: uniform random placement,
// heterogeneous radio ranges (⇒ directed links), with a search over a global
// range multiplier to hit a target edge count, retrying placements until the
// result is strongly connected (mapping must be completable by a walker).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "geom/vec2.hpp"
#include "net/graph.hpp"
#include "net/topology.hpp"

namespace agentnet {

/// A static snapshot: placement + base ranges + the full-battery link graph.
struct GeneratedNetwork {
  Aabb bounds{};
  std::vector<Vec2> positions;
  std::vector<double> base_ranges;
  LinkPolicy policy = LinkPolicy::kDirected;
  Graph graph;
};

struct GeometricNetworkParams {
  std::size_t node_count = 300;
  Aabb bounds{{0.0, 0.0}, {1000.0, 1000.0}};
  /// Per-node range = multiplier × uniform[min_range_factor, 1]. A factor
  /// of 1 reproduces Minar's homogeneous (symmetric) radios.
  double min_range_factor = 0.7;
  LinkPolicy policy = LinkPolicy::kDirected;
};

/// One placement with the given absolute range multiplier; no connectivity
/// guarantee.
GeneratedNetwork random_geometric_network(const GeometricNetworkParams& params,
                                          double range_multiplier, Rng& rng);

struct TargetEdgeParams {
  GeometricNetworkParams geometry{};
  std::size_t target_edges = 2164;
  /// Accept |edges - target| / target within this tolerance.
  double tolerance = 0.02;
  /// Placements to try before giving up on (strong) connectivity.
  int max_attempts = 64;
  /// Require strong connectivity (directed) — weak suffices for symmetric
  /// policies, where strong ≡ weak anyway.
  bool require_strongly_connected = true;
};

/// Searches a range multiplier to hit `target_edges` and retries placements
/// until the graph is (strongly) connected. Deterministic in `seed`.
/// Throws ConfigError when no acceptable network is found.
GeneratedNetwork generate_target_edge_network(const TargetEdgeParams& params,
                                              std::uint64_t seed);

/// The paper's mapping network: 300 nodes, ≈2164 bidirectional links
/// (≈4328 directed arcs), strongly connected. Deterministic in `seed`.
GeneratedNetwork paper_mapping_network(std::uint64_t seed);

// ---- Non-geometric graph families ------------------------------------------
// Radio networks are geometric; these families exist to test whether the
// agent algorithms' orderings are artefacts of geometry (bench extO). They
// produce bare Graphs (no positions); run them via World::fixed().

/// G(n, m) digraph: `arc_count` distinct directed arcs drawn uniformly.
/// Retries up to `max_attempts` draws for strong connectivity; throws
/// ConfigError when none is found (too sparse).
Graph erdos_renyi_digraph(std::size_t node_count, std::size_t arc_count,
                          std::uint64_t seed, int max_attempts = 64);

/// Barabási–Albert-style preferential attachment: each new node attaches
/// `edges_per_node` undirected edges (both arcs) to earlier nodes with
/// probability proportional to degree. Connected by construction; strongly
/// connected as a digraph because every edge is mutual.
Graph preferential_attachment_graph(std::size_t node_count,
                                    std::size_t edges_per_node,
                                    std::uint64_t seed);

}  // namespace agentnet
