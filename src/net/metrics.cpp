#include "net/metrics.hpp"

#include <algorithm>
#include <queue>

namespace agentnet {

namespace {

// Shared over Graph and CsrView — both expose node_count()/out_neighbors()
// with identical (ascending) neighbour order, so the results are
// bit-identical across representations.
template <class AnyGraph>
void bfs_distances_impl(const AnyGraph& graph, NodeId src,
                        std::vector<int>& dist) {
  dist.assign(graph.node_count(), -1);
  AGENTNET_REQUIRE(src < graph.node_count(), "bfs source out of range");
  std::queue<NodeId> frontier;
  dist[src] = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : graph.out_neighbors(u)) {
      if (dist[v] == -1) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
}

std::size_t count_reached(const std::vector<int>& dist) {
  return static_cast<std::size_t>(
      std::count_if(dist.begin(), dist.end(), [](int d) { return d >= 0; }));
}

}  // namespace

std::vector<int> bfs_distances(const Graph& graph, NodeId src) {
  std::vector<int> dist;
  bfs_distances_impl(graph, src, dist);
  return dist;
}

std::vector<int> bfs_distances(const CsrView& graph, NodeId src) {
  std::vector<int> dist;
  bfs_distances_impl(graph, src, dist);
  return dist;
}

void bfs_distances(const CsrView& graph, NodeId src, std::vector<int>& dist) {
  bfs_distances_impl(graph, src, dist);
}

std::size_t reachable_count(const Graph& graph, NodeId src) {
  return count_reached(bfs_distances(graph, src));
}

std::size_t reachable_count(const CsrView& graph, NodeId src) {
  return count_reached(bfs_distances(graph, src));
}

bool is_strongly_connected(const Graph& graph) {
  if (graph.node_count() == 0) return true;
  if (reachable_count(graph, 0) != graph.node_count()) return false;
  return reachable_count(reversed(graph), 0) == graph.node_count();
}

bool is_weakly_connected(const Graph& graph) {
  if (graph.node_count() == 0) return true;
  Graph undirected(graph.node_count());
  for (const Edge& e : graph.edges())
    undirected.add_undirected_edge(e.from, e.to);
  return reachable_count(undirected, 0) == graph.node_count();
}

std::vector<int> strongly_connected_components(const Graph& graph) {
  const std::size_t n = graph.node_count();
  // Kosaraju with explicit stacks (no recursion: graphs can be long chains).
  std::vector<int> order;
  order.reserve(n);
  std::vector<char> visited(n, 0);
  for (NodeId start = 0; start < n; ++start) {
    if (visited[start]) continue;
    // Iterative post-order DFS.
    std::vector<std::pair<NodeId, std::size_t>> stack{{start, 0}};
    visited[start] = 1;
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      const auto neighbors = graph.out_neighbors(u);
      if (next < neighbors.size()) {
        const NodeId v = neighbors[next++];
        if (!visited[v]) {
          visited[v] = 1;
          stack.push_back({v, 0});
        }
      } else {
        order.push_back(static_cast<int>(u));
        stack.pop_back();
      }
    }
  }
  const Graph rev = reversed(graph);
  std::vector<int> component(n, -1);
  int comp_id = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId root = static_cast<NodeId>(*it);
    if (component[root] != -1) continue;
    std::vector<NodeId> stack{root};
    component[root] = comp_id;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : rev.out_neighbors(u)) {
        if (component[v] == -1) {
          component[v] = comp_id;
          stack.push_back(v);
        }
      }
    }
    ++comp_id;
  }
  return component;
}

int diameter(const Graph& graph) {
  int best = 0;
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    const auto dist = bfs_distances(graph, u);
    for (int d : dist) {
      if (d < 0) return -1;
      best = std::max(best, d);
    }
  }
  return best;
}

int diameter(const Graph& graph, const AgentParallel& par) {
  const std::size_t n = graph.node_count();
  if (!par.active() || n < 2) return diameter(graph);
  // Per-root eccentricity slots (-1 = some pair unreachable), reduced in
  // root order; integer max, so identical at any thread count.
  std::vector<int> ecc(n, 0);
  par.for_each_scratch(
      n, [] { return std::vector<int>(); },
      [&](std::size_t u, std::vector<int>& dist) {
        bfs_distances_impl(graph, static_cast<NodeId>(u), dist);
        int best = 0;
        for (int d : dist) {
          if (d < 0) {
            best = -1;
            break;
          }
          best = std::max(best, d);
        }
        ecc[u] = best;
      });
  int best = 0;
  for (int e : ecc) {
    if (e < 0) return -1;
    best = std::max(best, e);
  }
  return best;
}

DegreeStats degree_stats(const Graph& graph) {
  DegreeStats stats;
  if (graph.node_count() == 0) return stats;
  stats.min_out = graph.out_degree(0);
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    const std::size_t d = graph.out_degree(u);
    stats.min_out = std::min(stats.min_out, d);
    stats.max_out = std::max(stats.max_out, d);
  }
  // One bulk pass instead of node_count separate in_degree() scans.
  const std::vector<std::size_t> ins = graph.in_degrees();
  stats.min_in = ins[0];
  for (std::size_t d : ins) {
    stats.min_in = std::min(stats.min_in, d);
    stats.max_in = std::max(stats.max_in, d);
  }
  stats.mean_out = static_cast<double>(graph.edge_count()) /
                   static_cast<double>(graph.node_count());
  if (graph.edge_count() > 0) {
    std::size_t reciprocal = 0;
    for (const Edge& e : graph.edges())
      if (graph.has_edge(e.to, e.from)) ++reciprocal;
    stats.symmetry = static_cast<double>(reciprocal) /
                     static_cast<double>(graph.edge_count());
  }
  return stats;
}

Graph reversed(const Graph& graph) {
  Graph rev;
  graph.transposed_into(rev);
  return rev;
}

double clustering_coefficient(const Graph& graph) {
  const std::size_t n = graph.node_count();
  // Undirected view.
  Graph und(n);
  for (const Edge& e : graph.edges()) und.add_undirected_edge(e.from, e.to);
  std::size_t closed_triplets = 0;  // counts each triangle 6 times
  std::size_t triplets = 0;         // ordered neighbour pairs per centre
  for (NodeId v = 0; v < n; ++v) {
    const auto nbrs = und.out_neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        ++triplets;
        if (und.has_edge(nbrs[i], nbrs[j])) ++closed_triplets;
      }
    }
  }
  if (triplets == 0) return 0.0;
  return static_cast<double>(closed_triplets) /
         static_cast<double>(triplets);
}

std::vector<std::size_t> hop_histogram(const Graph& graph, NodeId src) {
  const auto dist = bfs_distances(graph, src);
  int max_d = 0;
  for (int d : dist) max_d = std::max(max_d, d);
  std::vector<std::size_t> hist(static_cast<std::size_t>(max_d) + 1, 0);
  for (int d : dist)
    if (d >= 0) ++hist[static_cast<std::size_t>(d)];
  return hist;
}

double mean_shortest_path(const Graph& graph) {
  std::size_t pairs = 0;
  std::size_t total = 0;
  for (NodeId u = 0; u < graph.node_count(); ++u) {
    for (int d : bfs_distances(graph, u)) {
      if (d > 0) {
        ++pairs;
        total += static_cast<std::size_t>(d);
      }
    }
  }
  if (pairs == 0) return -1.0;
  return static_cast<double>(total) / static_cast<double>(pairs);
}

double mean_shortest_path(const Graph& graph, const AgentParallel& par) {
  const std::size_t n = graph.node_count();
  if (!par.active() || n < 2) return mean_shortest_path(graph);
  // Per-root integer (pairs, total) slots summed in root order — exact
  // integer sums, so the quotient matches the serial value bit for bit.
  std::vector<std::size_t> pair_slots(n, 0);
  std::vector<std::size_t> total_slots(n, 0);
  par.for_each_scratch(
      n, [] { return std::vector<int>(); },
      [&](std::size_t u, std::vector<int>& dist) {
        bfs_distances_impl(graph, static_cast<NodeId>(u), dist);
        for (int d : dist) {
          if (d > 0) {
            ++pair_slots[u];
            total_slots[u] += static_cast<std::size_t>(d);
          }
        }
      });
  std::size_t pairs = 0;
  std::size_t total = 0;
  for (std::size_t u = 0; u < n; ++u) {
    pairs += pair_slots[u];
    total += total_slots[u];
  }
  if (pairs == 0) return -1.0;
  return static_cast<double>(total) / static_cast<double>(pairs);
}

}  // namespace agentnet
