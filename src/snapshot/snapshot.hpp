// Deterministic checkpoint/restore for crash-tolerant long runs
// (ROADMAP item 4; docs/ROBUSTNESS.md "Checkpoint/restore").
//
// A checkpoint file is a chunked, versioned, CRC32-checksummed binary
// container (the src/io convention of a versioned magic header, in binary
// form): one identity chunk naming the experiment it belongs to, then one
// chunk per run holding that run's serialized state — every RNG stream,
// the World, the agents/tables/pheromone/queues, the fault injector's
// schedule position, and the run's telemetry buffers — captured at the top
// of a step. Restoring a record and continuing reproduces the
// uninterrupted run byte-for-byte (CSV series, metrics JSONL, counter
// totals) at any AGENTNET_THREADS setting; see the resume-determinism
// contract in docs/ROBUSTNESS.md.
//
// Files are written to `<path>.tmp` and atomically renamed, so a crash
// mid-save can never leave a torn checkpoint at the target path. Corrupt,
// truncated or version-mismatched files are rejected with ConfigError.
//
// Wiring: ExperimentCheckpointer::from_env reads AGENTNET_CHECKPOINT
// (autosave path), AGENTNET_CHECKPOINT_EVERY (period in steps, default 50)
// and AGENTNET_RESUME (checkpoint to restore). Each run of a multi-run
// experiment gets a RunCheckpointPort; runs checkpoint independently (no
// lockstep), and each update rewrites the whole file under a mutex. The
// file's byte content therefore varies with thread timing — it is a
// recovery artefact, not part of the deterministic output surface — but
// resuming from any valid checkpoint yields byte-identical final outputs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "snapshot/bytes.hpp"

namespace agentnet::snapshot {

inline constexpr char kSnapshotMagic[8] = {'A', 'G', 'N', 'T',
                                           'S', 'N', 'A', 'P'};
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// What experiment a checkpoint belongs to. Resume validates every field
/// and throws ConfigError on mismatch — restoring a routing checkpoint
/// into a mapping sweep (or the same sweep at different scale) must fail
/// loudly, not corrupt state.
struct ExperimentIdentity {
  std::string kind;  ///< "mapping" | "routing" | "aco" | "traffic" | "dv".
  std::uint64_t runs = 0;
  std::uint64_t run_seed_base = 0;
  std::uint64_t node_count = 0;
  std::uint64_t steps = 0;  ///< The step budget (steps / max_steps knob).

  friend bool operator==(const ExperimentIdentity&,
                         const ExperimentIdentity&) = default;
};

/// One run's saved state: the step the record was captured at (top of the
/// loop, before the step executed) and the opaque payload the task's save
/// lambda plus the telemetry capture produced.
struct RunRecord {
  std::uint64_t step = 0;
  std::vector<std::uint8_t> payload;
};

/// The in-memory image of a checkpoint file.
struct Checkpoint {
  ExperimentIdentity identity;
  std::map<std::uint64_t, RunRecord> runs;  ///< Keyed by run index.
};

/// Serializes `checkpoint` to `path` via `<path>.tmp` + atomic rename.
/// Throws ConfigError on I/O failure (target left untouched).
void save_checkpoint(const Checkpoint& checkpoint, const std::string& path);

/// Parses a checkpoint file. Throws ConfigError on missing file, bad
/// magic, unsupported version, truncation, CRC mismatch, or duplicate run
/// records — always with a message locating the problem.
Checkpoint load_checkpoint(const std::string& path);

class ExperimentCheckpointer;

/// A single run's handle into the experiment's checkpointer. The task loop
/// calls save_due/save at the top of each step and restore once before the
/// loop; everything else (telemetry capture ordering, file rewriting,
/// checkpoint trace events) is handled here so the task wiring stays
/// three lines.
class RunCheckpointPort {
 public:
  using SaveFn = std::function<void(ByteWriter&)>;
  using LoadFn = std::function<void(ByteReader&)>;

  RunCheckpointPort() = default;

  /// True when a resume record exists for this run.
  bool resuming() const { return has_resume_; }

  /// Restores this run's record: `load_state` rebuilds the task's state
  /// from the reader, then the telemetry buffers are restored on top (so
  /// any counters or events emitted while loading are absorbed), then a
  /// checkpoint_restored counter + trace event is emitted. Returns the
  /// step to resume the loop at.
  std::size_t restore(const LoadFn& load_state);

  /// True when the loop should checkpoint at the top of step `t`: autosave
  /// is configured, t is a nonzero multiple of the period, and t is not
  /// the step this run just resumed at (that state is already on disk).
  bool save_due(std::size_t t) const;

  /// Captures a checkpoint at the top of step `t`: the task's save lambda
  /// first, then the telemetry buffers, then (after the capture, so the
  /// record never describes itself) the checkpoint_saved counter + trace
  /// event; finally the experiment file is atomically rewritten.
  void save(std::size_t t, const SaveFn& save_state);

 private:
  friend class ExperimentCheckpointer;

  ExperimentCheckpointer* owner_ = nullptr;
  std::uint64_t run_ = 0;
  std::uint64_t every_ = 0;
  bool autosave_ = false;
  bool has_resume_ = false;
  std::uint64_t resume_step_ = 0;
  std::vector<std::uint8_t> resume_payload_;
};

/// Shared, mutex-guarded owner of one experiment's checkpoint state. Runs
/// save independently; every update rewrites the whole file atomically.
class ExperimentCheckpointer {
 public:
  /// `save_path` empty disables autosave (restore-only); `resume_path`
  /// empty starts fresh. A non-empty resume path is loaded and validated
  /// against `identity` immediately (ConfigError on mismatch).
  ExperimentCheckpointer(ExperimentIdentity identity, std::string save_path,
                         std::uint64_t every, const std::string& resume_path);

  /// Builds from AGENTNET_CHECKPOINT / AGENTNET_CHECKPOINT_EVERY /
  /// AGENTNET_RESUME; nullptr when neither path variable is set.
  static std::unique_ptr<ExperimentCheckpointer> from_env(
      const ExperimentIdentity& identity);

  /// The port for run `run` (thread-safe; call from the run's worker).
  RunCheckpointPort port(std::uint64_t run);

 private:
  friend class RunCheckpointPort;

  void update(std::uint64_t run, std::uint64_t step,
              std::vector<std::uint8_t> payload);

  ExperimentIdentity identity_;
  std::string path_;
  std::uint64_t every_;
  std::mutex mutex_;
  Checkpoint state_;
};

}  // namespace agentnet::snapshot
