// Bounds-checked little-endian byte streams for the snapshot format.
//
// ByteWriter appends scalars to a growable buffer; ByteReader consumes the
// same encoding and throws ConfigError — with the offending byte offset —
// on any truncated or malformed read, so a damaged checkpoint is rejected
// loudly instead of invoking UB. The encoding is fixed-width
// little-endian, independent of host endianness and padding, which is what
// makes a snapshot written on one machine byte-identical on another.
//
// Header-only and dependent only on common/error.hpp, so any layer
// (including obs) may include it without a link-time dependency.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace agentnet::snapshot {

/// CRC-32 (IEEE 802.3, reflected) over a byte range; table-driven.
inline std::uint32_t crc32(const std::uint8_t* data, std::size_t len,
                           std::uint32_t seed = 0) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < len; ++i)
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  return ~crc;
}

class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void size(std::size_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s) {
    size(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  void raw(const std::uint8_t* data, std::size_t len) {
    bytes_.insert(bytes_.end(), data, data + len);
  }
  void blob(const std::vector<std::uint8_t>& b) {
    size(b.size());
    raw(b.data(), b.size());
  }

  /// Arithmetic element vector, length-prefixed.
  template <typename T>
  void pod_vec(const std::vector<T>& v) {
    static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>);
    size(v.size());
    for (const T& x : v) scalar(x);
  }

  template <typename T>
  void scalar(T x) {
    if constexpr (std::is_same_v<T, bool>) {
      boolean(x);
    } else if constexpr (std::is_same_v<T, double>) {
      f64(x);
    } else if constexpr (std::is_enum_v<T>) {
      u64(static_cast<std::uint64_t>(x));
    } else {
      static_assert(std::is_integral_v<T>);
      u64(static_cast<std::uint64_t>(x));
    }
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t len)
      : data_(data), len_(len) {}
  explicit ByteReader(const std::vector<std::uint8_t>& b)
      : ByteReader(b.data(), b.size()) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::size_t size() { return static_cast<std::size_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() {
    const std::uint8_t v = u8();
    AGENTNET_REQUIRE(v <= 1, "snapshot: bad boolean at byte " +
                                 std::to_string(pos_ - 1));
    return v != 0;
  }
  std::string str() {
    const std::size_t n = counted(1);
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<std::uint8_t> blob() {
    const std::size_t n = counted(1);
    need(n);
    std::vector<std::uint8_t> b(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return b;
  }

  /// A view of the next `n` bytes (bounds-checked), advancing past them.
  /// The pointer aliases the backing buffer — it lets the container layer
  /// CRC and sub-parse a chunk without copying it.
  const std::uint8_t* raw(std::size_t n) {
    need(n);
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  template <typename T>
  void pod_vec(std::vector<T>& v) {
    static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>);
    const std::size_t n = counted(sizeof(T) == 1 ? 1 : 8);
    v.clear();
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) v.push_back(scalar<T>());
  }

  template <typename T>
  T scalar() {
    if constexpr (std::is_same_v<T, bool>) {
      return boolean();
    } else if constexpr (std::is_same_v<T, double>) {
      return f64();
    } else {
      const std::uint64_t raw = u64();
      const T v = static_cast<T>(raw);
      AGENTNET_REQUIRE(static_cast<std::uint64_t>(v) == raw,
                       "snapshot: value out of range at byte " +
                           std::to_string(pos_ - 8));
      return v;
    }
  }

  /// A count that must leave at least `element_size` bytes per element in
  /// the stream — rejects "giant count" corruption before any allocation.
  std::size_t counted(std::size_t element_size) {
    const std::uint64_t v = u64();
    AGENTNET_REQUIRE(
        v <= (len_ - pos_) / (element_size == 0 ? 1 : element_size),
        "snapshot: count " + std::to_string(v) +
            " overruns remaining bytes at byte " + std::to_string(pos_ - 8));
    return static_cast<std::size_t>(v);
  }

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return len_ - pos_; }
  bool done() const { return pos_ == len_; }

 private:
  void need(std::size_t n) {
    AGENTNET_REQUIRE(n <= len_ - pos_,
                     "snapshot: truncated stream at byte " +
                         std::to_string(pos_) + " (need " +
                         std::to_string(n) + " more of " +
                         std::to_string(len_ - pos_) + " left)");
  }

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

}  // namespace agentnet::snapshot
