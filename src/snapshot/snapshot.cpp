#include "snapshot/snapshot.hpp"

#include <cstring>
#include <fstream>
#include <iterator>
#include <utility>

#include "common/atomic_file.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "obs/obs.hpp"

namespace agentnet::snapshot {

namespace {

constexpr std::uint32_t kChunkIdentity = 1;
constexpr std::uint32_t kChunkRun = 2;

void write_identity(ByteWriter& w, const ExperimentIdentity& id) {
  w.str(id.kind);
  w.u64(id.runs);
  w.u64(id.run_seed_base);
  w.u64(id.node_count);
  w.u64(id.steps);
}

ExperimentIdentity read_identity(ByteReader& r) {
  ExperimentIdentity id;
  id.kind = r.str();
  id.runs = r.u64();
  id.run_seed_base = r.u64();
  id.node_count = r.u64();
  id.steps = r.u64();
  return id;
}

void append_chunk(ByteWriter& body, std::uint32_t id, ByteWriter&& chunk) {
  const std::vector<std::uint8_t> bytes = chunk.take();
  body.u32(id);
  body.u64(bytes.size());
  body.u32(crc32(bytes.data(), bytes.size()));
  body.raw(bytes.data(), bytes.size());
}

/// Captures one run's telemetry shard — counters, trace events, metrics
/// rows — so a restored run continues the exact streams it was recording.
/// Phase timings are wall-clock and deliberately not captured: they are
/// reported as `# phase_*_ms=` footer comments, outside the deterministic
/// output surface. Bookkeeping counters (checkpoint_*, the agent engine's
/// dispatch count) are captured as zero for the same reason: they track
/// harness activity, not run state, and capturing them would make payload
/// bytes depend on AGENTNET_AGENT_THREADS or on earlier autosaves.
void save_obs_state(ByteWriter& w, const obs::RunObs& o) {
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    const auto counter = static_cast<obs::Counter>(i);
    w.u64(obs::is_bookkeeping_counter(counter) ? 0
                                               : o.counters.value(counter));
  }
  const auto& events = o.trace.events();
  w.size(events.size());
  for (const obs::TraceEvent& e : events) {
    w.u64(static_cast<std::uint64_t>(e.kind));
    w.u64(e.step);
    w.i64(e.agent);
    w.i64(e.a);
    w.i64(e.b);
  }
  o.metrics.save_state(w);
}

void load_obs_state(ByteReader& r, obs::RunObs& o) {
  for (std::size_t i = 0; i < obs::kCounterCount; ++i)
    o.counters.set(static_cast<obs::Counter>(i), r.u64());
  const std::size_t n = r.counted(5 * 8);
  o.trace.clear();
  for (std::size_t k = 0; k < n; ++k) {
    obs::TraceEvent e;
    const std::uint64_t kind = r.u64();
    AGENTNET_REQUIRE(
        kind < static_cast<std::uint64_t>(obs::TraceEventKind::kCount),
        "snapshot: unknown trace event kind " + std::to_string(kind));
    e.kind = static_cast<obs::TraceEventKind>(kind);
    e.step = r.u64();
    e.agent = r.i64();
    e.a = r.i64();
    e.b = r.i64();
    // append() is gated on the buffer being enabled — which it is exactly
    // when the resuming process traces too, i.e. when the environment
    // matches the saving process's (the resume contract).
    o.trace.append(e);
  }
  o.metrics.load_state(r);
}

}  // namespace

void save_checkpoint(const Checkpoint& checkpoint, const std::string& path) {
  ByteWriter body;
  {
    ByteWriter chunk;
    write_identity(chunk, checkpoint.identity);
    append_chunk(body, kChunkIdentity, std::move(chunk));
  }
  for (const auto& [run, record] : checkpoint.runs) {
    ByteWriter chunk;
    chunk.u64(run);
    chunk.u64(record.step);
    chunk.blob(record.payload);
    append_chunk(body, kChunkRun, std::move(chunk));
  }

  AtomicFileWriter file(path, std::ios::binary);
  std::ostream& os = file.stream();
  os.write(kSnapshotMagic, sizeof kSnapshotMagic);
  ByteWriter header;
  header.u32(kSnapshotVersion);
  header.u32(static_cast<std::uint32_t>(1 + checkpoint.runs.size()));
  os.write(reinterpret_cast<const char*>(header.bytes().data()),
           static_cast<std::streamsize>(header.bytes().size()));
  os.write(reinterpret_cast<const char*>(body.bytes().data()),
           static_cast<std::streamsize>(body.bytes().size()));
  file.commit();
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  AGENTNET_REQUIRE(is.is_open(), "cannot open checkpoint: " + path);
  std::vector<std::uint8_t> data(
      (std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  AGENTNET_REQUIRE(!is.bad(), "error reading checkpoint: " + path);

  AGENTNET_REQUIRE(data.size() >= sizeof kSnapshotMagic &&
                       std::memcmp(data.data(), kSnapshotMagic,
                                   sizeof kSnapshotMagic) == 0,
                   "not an agentnet snapshot (bad magic): " + path);

  Checkpoint out;
  try {
    ByteReader r(data.data() + sizeof kSnapshotMagic,
                 data.size() - sizeof kSnapshotMagic);
    const std::uint32_t version = r.u32();
    AGENTNET_REQUIRE(
        version == kSnapshotVersion,
        "unsupported snapshot version " + std::to_string(version) +
            " (this build reads version " + std::to_string(kSnapshotVersion) +
            ")");
    const std::uint32_t chunk_count = r.u32();

    bool have_identity = false;
    for (std::uint32_t c = 0; c < chunk_count; ++c) {
      const std::size_t offset = sizeof kSnapshotMagic + r.position();
      const std::uint32_t id = r.u32();
      const std::uint64_t len = r.u64();
      const std::uint32_t stored_crc = r.u32();
      AGENTNET_REQUIRE(len <= r.remaining(),
                       "snapshot: chunk " + std::to_string(c) +
                           " of length " + std::to_string(len) +
                           " overruns the file at byte " +
                           std::to_string(offset));
      const std::uint8_t* body_ptr = r.raw(static_cast<std::size_t>(len));
      AGENTNET_REQUIRE(
          crc32(body_ptr, static_cast<std::size_t>(len)) == stored_crc,
          "snapshot: CRC mismatch in chunk " + std::to_string(c) +
              " at byte " + std::to_string(offset));
      ByteReader body(body_ptr, static_cast<std::size_t>(len));
      if (id == kChunkIdentity) {
        AGENTNET_REQUIRE(!have_identity, "snapshot: duplicate identity chunk");
        out.identity = read_identity(body);
        have_identity = true;
      } else if (id == kChunkRun) {
        const std::uint64_t run = body.u64();
        RunRecord record;
        record.step = body.u64();
        record.payload = body.blob();
        AGENTNET_REQUIRE(out.runs.find(run) == out.runs.end(),
                         "snapshot: duplicate record for run " +
                             std::to_string(run));
        out.runs.emplace(run, std::move(record));
      } else {
        throw ConfigError("snapshot: unknown chunk id " + std::to_string(id) +
                          " at byte " + std::to_string(offset));
      }
      AGENTNET_REQUIRE(body.done(), "snapshot: trailing bytes in chunk " +
                                        std::to_string(c) + " at byte " +
                                        std::to_string(offset));
    }
    AGENTNET_REQUIRE(r.done(), "snapshot: " + std::to_string(r.remaining()) +
                                   " trailing bytes after last chunk");
    AGENTNET_REQUIRE(have_identity, "snapshot: missing identity chunk");
  } catch (const ConfigError& e) {
    // Every structural failure names the file it came from.
    throw ConfigError(std::string(e.what()) + ": " + path);
  }
  return out;
}

std::size_t RunCheckpointPort::restore(const LoadFn& load_state) {
  AGENTNET_REQUIRE(has_resume_, "no checkpoint record to restore");
  ByteReader r(resume_payload_);
  load_state(r);  // task state first; restoring telemetry last absorbs any
                  // counters/events the load itself emitted
  load_obs_state(r, obs::current_obs());
  AGENTNET_REQUIRE(r.done(),
                   "snapshot: trailing bytes in run " + std::to_string(run_) +
                       " record");
  AGENTNET_COUNT(kCheckpointRestored);
  AGENTNET_OBS_EVENT(kCheckpointRestored, resume_step_);
  return static_cast<std::size_t>(resume_step_);
}

bool RunCheckpointPort::save_due(std::size_t t) const {
  if (!autosave_ || every_ == 0 || t == 0) return false;
  if (t % every_ != 0) return false;
  // The resume step's state is already on disk.
  return !(has_resume_ && t == resume_step_);
}

void RunCheckpointPort::save(std::size_t t, const SaveFn& save_state) {
  ByteWriter w;
  save_state(w);
  save_obs_state(w, obs::current_obs());
  // Emitted after the capture, so a record never describes its own save.
  AGENTNET_COUNT(kCheckpointSaved);
  AGENTNET_OBS_EVENT(kCheckpointSaved, t);
  owner_->update(run_, t, w.take());
}

ExperimentCheckpointer::ExperimentCheckpointer(ExperimentIdentity identity,
                                               std::string save_path,
                                               std::uint64_t every,
                                               const std::string& resume_path)
    : identity_(std::move(identity)),
      path_(std::move(save_path)),
      every_(every) {
  if (!resume_path.empty()) {
    state_ = load_checkpoint(resume_path);
    const ExperimentIdentity& got = state_.identity;
    AGENTNET_REQUIRE(
        got == identity_,
        "checkpoint " + resume_path +
            " belongs to a different experiment (file: kind=" + got.kind +
            " runs=" + std::to_string(got.runs) + " seed=" +
            std::to_string(got.run_seed_base) + " nodes=" +
            std::to_string(got.node_count) + " steps=" +
            std::to_string(got.steps) + "; expected: kind=" + identity_.kind +
            " runs=" + std::to_string(identity_.runs) + " seed=" +
            std::to_string(identity_.run_seed_base) + " nodes=" +
            std::to_string(identity_.node_count) + " steps=" +
            std::to_string(identity_.steps) + ")");
  } else {
    state_.identity = identity_;
  }
}

std::unique_ptr<ExperimentCheckpointer> ExperimentCheckpointer::from_env(
    const ExperimentIdentity& identity) {
  const std::string save_path = env_string("AGENTNET_CHECKPOINT").value_or("");
  const std::string resume_path = env_string("AGENTNET_RESUME").value_or("");
  if (save_path.empty() && resume_path.empty()) return nullptr;
  const int every = env_int("AGENTNET_CHECKPOINT_EVERY", 50);
  AGENTNET_REQUIRE(every >= 1,
                   "AGENTNET_CHECKPOINT_EVERY must be >= 1, got " +
                       std::to_string(every));
  return std::make_unique<ExperimentCheckpointer>(
      identity, save_path, static_cast<std::uint64_t>(every), resume_path);
}

RunCheckpointPort ExperimentCheckpointer::port(std::uint64_t run) {
  std::lock_guard<std::mutex> lock(mutex_);
  RunCheckpointPort p;
  p.owner_ = this;
  p.run_ = run;
  p.every_ = every_;
  p.autosave_ = !path_.empty();
  const auto it = state_.runs.find(run);
  if (it != state_.runs.end()) {
    p.has_resume_ = true;
    p.resume_step_ = it->second.step;
    p.resume_payload_ = it->second.payload;
  }
  return p;
}

void ExperimentCheckpointer::update(std::uint64_t run, std::uint64_t step,
                                    std::vector<std::uint8_t> payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  state_.runs[run] = RunRecord{step, std::move(payload)};
  if (!path_.empty()) save_checkpoint(state_, path_);
}

}  // namespace agentnet::snapshot
