// Uniform spatial hash grid over the arena; turns the O(n^2) "who is within
// radio range" scan into a neighbourhood query of nearby cells. The topology
// builder rebuilds it wholesale for full builds and relocates single points
// with move() for incremental updates; both paths reuse internal buffers, so
// a warm grid allocates nothing.
//
// Points live in per-cell buckets. Bucket order is not specified — callers
// that need deterministic output sort the accepted candidates (query() does,
// and the topology builder sorts each node's neighbour list), so every
// consumer sees identical results whether the grid was rebuilt or patched.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"

namespace agentnet {

class SpatialGrid {
 public:
  /// Hard cap on cols*rows. Million-node arenas can otherwise request
  /// astronomically many cells (huge bounds ÷ small cell size — enough to
  /// overflow an int or exhaust memory before a single point is inserted);
  /// construction coarsens the cell size until the grid fits. A coarser
  /// cell only widens neighbourhood scans, it never changes query results.
  static constexpr std::size_t kMaxCells = std::size_t{1} << 21;

  /// `cell_size` should be >= the largest query radius for single-ring
  /// lookups; larger radii still work (more cells are visited). The stored
  /// cell size may be coarsened to respect kMaxCells — read it back via
  /// cell_size().
  SpatialGrid(Aabb bounds, double cell_size);

  /// Replaces the contents with `positions`; index i keeps identity i.
  /// Reuses internal storage — allocation-free once capacity is warm.
  void rebuild(const std::vector<Vec2>& positions);

  /// Relocates point `i` to `p`. Returns true when the point changed grid
  /// cell (bucket relocation happened); a move within the same cell — or a
  /// no-op move — only updates the stored position and returns false.
  bool move(std::size_t i, Vec2 p);

  std::size_t size() const { return positions_.size(); }
  /// The position point `i` was last rebuilt or moved to.
  Vec2 position(std::size_t i) const { return positions_[i]; }
  Aabb bounds() const { return bounds_; }
  double cell_size() const { return cell_size_; }

  /// Calls `fn(j)` for every point j (including i itself if present) with
  /// distance(point, positions[j]) <= radius. The callback is a template
  /// parameter so the per-candidate call inlines (no std::function
  /// indirection on the topology-rebuild hot path). Visit order within a
  /// cell is unspecified; callers sort when order matters.
  template <class Fn>
  void for_each_within(Vec2 point, double radius, Fn&& fn) const {
    if (positions_.empty() || radius < 0.0) return;
    int cx0, cy0, cx1, cy1;
    cell_coords({point.x - radius, point.y - radius}, cx0, cy0);
    cell_coords({point.x + radius, point.y + radius}, cx1, cy1);
    const double r2 = radius * radius;
    for (int cy = cy0; cy <= cy1; ++cy) {
      for (int cx = cx0; cx <= cx1; ++cx) {
        for (std::uint32_t j : cells_[cell_index(cx, cy)]) {
          if (distance2(point, positions_[j]) <= r2) fn(std::size_t{j});
        }
      }
    }
  }

  /// Convenience: indices within radius of `point`, ascending order.
  std::vector<std::size_t> query(Vec2 point, double radius) const;

  /// As above, reusing caller storage (`out` is cleared first) — the
  /// zero-allocation form for per-step callers.
  void query(Vec2 point, double radius, std::vector<std::size_t>& out) const;

  /// Heap footprint: positions, bucket headers and bucket capacity
  /// (bytes/node accounting; O(cells) walk, bench/report use only).
  std::size_t heap_bytes() const;

 private:
  std::size_t cell_index(int cx, int cy) const {
    return static_cast<std::size_t>(cy) * cols_ + cx;
  }
  void cell_coords(Vec2 p, int& cx, int& cy) const;

  Aabb bounds_;
  double cell_size_;
  int cols_ = 0;
  int rows_ = 0;
  std::vector<Vec2> positions_;
  // Per-cell buckets (point indices); cells_[home_[i]] contains i. Bucket
  // membership is maintained by rebuild() and move().
  std::vector<std::vector<std::uint32_t>> cells_;
  std::vector<std::uint32_t> home_;  ///< Each point's current cell.
};

}  // namespace agentnet
