// Uniform spatial hash grid over the arena; turns the O(n^2) "who is within
// radio range" scan into a neighbourhood query of nearby cells. Rebuilt each
// step by the topology builder (node counts are small, rebuild is cheap and
// keeps the structure trivially correct under mobility).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "geom/vec2.hpp"

namespace agentnet {

class SpatialGrid {
 public:
  /// `cell_size` should be >= the largest query radius for single-ring
  /// lookups; larger radii still work (more cells are visited).
  SpatialGrid(Aabb bounds, double cell_size);

  /// Replaces the contents with `positions`; index i keeps identity i.
  void rebuild(const std::vector<Vec2>& positions);

  std::size_t size() const { return positions_.size(); }
  Aabb bounds() const { return bounds_; }
  double cell_size() const { return cell_size_; }

  /// Calls `fn(j)` for every point j (including i itself if present) with
  /// distance(point, positions[j]) <= radius.
  void for_each_within(Vec2 point, double radius,
                       const std::function<void(std::size_t)>& fn) const;

  /// Convenience: indices within radius of `point`, ascending order.
  std::vector<std::size_t> query(Vec2 point, double radius) const;

 private:
  std::size_t cell_index(int cx, int cy) const;
  void cell_coords(Vec2 p, int& cx, int& cy) const;

  Aabb bounds_;
  double cell_size_;
  int cols_ = 0;
  int rows_ = 0;
  std::vector<Vec2> positions_;
  // CSR layout: cell_start_[c]..cell_start_[c+1] indexes into cell_items_.
  std::vector<std::uint32_t> cell_start_;
  std::vector<std::uint32_t> cell_items_;
};

}  // namespace agentnet
