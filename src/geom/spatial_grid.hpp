// Uniform spatial hash grid over the arena; turns the O(n^2) "who is within
// radio range" scan into a neighbourhood query of nearby cells. Rebuilt each
// step by the topology builder; rebuild() reuses all internal buffers, so a
// warm grid allocates nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"

namespace agentnet {

class SpatialGrid {
 public:
  /// `cell_size` should be >= the largest query radius for single-ring
  /// lookups; larger radii still work (more cells are visited).
  SpatialGrid(Aabb bounds, double cell_size);

  /// Replaces the contents with `positions`; index i keeps identity i.
  /// Reuses internal storage — allocation-free once capacity is warm.
  void rebuild(const std::vector<Vec2>& positions);

  std::size_t size() const { return positions_.size(); }
  Aabb bounds() const { return bounds_; }
  double cell_size() const { return cell_size_; }

  /// Calls `fn(j)` for every point j (including i itself if present) with
  /// distance(point, positions[j]) <= radius. The callback is a template
  /// parameter so the per-candidate call inlines (no std::function
  /// indirection on the topology-rebuild hot path).
  template <class Fn>
  void for_each_within(Vec2 point, double radius, Fn&& fn) const {
    if (positions_.empty() || radius < 0.0) return;
    int cx0, cy0, cx1, cy1;
    cell_coords({point.x - radius, point.y - radius}, cx0, cy0);
    cell_coords({point.x + radius, point.y + radius}, cx1, cy1);
    const double r2 = radius * radius;
    for (int cy = cy0; cy <= cy1; ++cy) {
      for (int cx = cx0; cx <= cx1; ++cx) {
        const std::size_t c = cell_index(cx, cy);
        for (std::uint32_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
          const std::size_t j = cell_items_[k];
          if (distance2(point, positions_[j]) <= r2) fn(j);
        }
      }
    }
  }

  /// Convenience: indices within radius of `point`, ascending order.
  std::vector<std::size_t> query(Vec2 point, double radius) const;

  /// As above, reusing caller storage (`out` is cleared first) — the
  /// zero-allocation form for per-step callers.
  void query(Vec2 point, double radius, std::vector<std::size_t>& out) const;

 private:
  std::size_t cell_index(int cx, int cy) const {
    return static_cast<std::size_t>(cy) * cols_ + cx;
  }
  void cell_coords(Vec2 p, int& cx, int& cy) const;

  Aabb bounds_;
  double cell_size_;
  int cols_ = 0;
  int rows_ = 0;
  std::vector<Vec2> positions_;
  // CSR layout: cell_start_[c]..cell_start_[c+1] indexes into cell_items_.
  std::vector<std::uint32_t> cell_start_;
  std::vector<std::uint32_t> cell_items_;
  // rebuild() scratch, kept across calls so a warm rebuild is allocation
  // free: per-cell fill cursors and each point's home cell.
  std::vector<std::uint32_t> cursor_;
  std::vector<std::uint32_t> home_;
};

}  // namespace agentnet
