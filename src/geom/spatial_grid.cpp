#include "geom/spatial_grid.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace agentnet {

SpatialGrid::SpatialGrid(Aabb bounds, double cell_size)
    : bounds_(bounds), cell_size_(cell_size) {
  AGENTNET_REQUIRE(cell_size > 0.0, "spatial grid cell size must be > 0");
  AGENTNET_REQUIRE(bounds.width() > 0.0 && bounds.height() > 0.0,
                   "spatial grid bounds must have positive area");
  cols_ = std::max(1, static_cast<int>(std::ceil(bounds.width() / cell_size)));
  rows_ =
      std::max(1, static_cast<int>(std::ceil(bounds.height() / cell_size)));
  cell_start_.assign(static_cast<std::size_t>(cols_) * rows_ + 1, 0);
}

void SpatialGrid::cell_coords(Vec2 p, int& cx, int& cy) const {
  const Vec2 q = bounds_.clamp(p);
  cx = std::min(cols_ - 1,
                static_cast<int>((q.x - bounds_.lo.x) / cell_size_));
  cy = std::min(rows_ - 1,
                static_cast<int>((q.y - bounds_.lo.y) / cell_size_));
}

std::size_t SpatialGrid::cell_index(int cx, int cy) const {
  return static_cast<std::size_t>(cy) * cols_ + cx;
}

void SpatialGrid::rebuild(const std::vector<Vec2>& positions) {
  positions_ = positions;
  const std::size_t cells = static_cast<std::size_t>(cols_) * rows_;
  std::vector<std::uint32_t> counts(cells, 0);
  std::vector<std::uint32_t> home(positions_.size());
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    int cx, cy;
    cell_coords(positions_[i], cx, cy);
    home[i] = static_cast<std::uint32_t>(cell_index(cx, cy));
    ++counts[home[i]];
  }
  cell_start_.assign(cells + 1, 0);
  for (std::size_t c = 0; c < cells; ++c)
    cell_start_[c + 1] = cell_start_[c] + counts[c];
  cell_items_.assign(positions_.size(), 0);
  std::vector<std::uint32_t> cursor(cell_start_.begin(),
                                    cell_start_.end() - 1);
  for (std::size_t i = 0; i < positions_.size(); ++i)
    cell_items_[cursor[home[i]]++] = static_cast<std::uint32_t>(i);
}

void SpatialGrid::for_each_within(
    Vec2 point, double radius,
    const std::function<void(std::size_t)>& fn) const {
  if (positions_.empty() || radius < 0.0) return;
  int cx0, cy0, cx1, cy1;
  cell_coords({point.x - radius, point.y - radius}, cx0, cy0);
  cell_coords({point.x + radius, point.y + radius}, cx1, cy1);
  const double r2 = radius * radius;
  for (int cy = cy0; cy <= cy1; ++cy) {
    for (int cx = cx0; cx <= cx1; ++cx) {
      const std::size_t c = cell_index(cx, cy);
      for (std::uint32_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
        const std::size_t j = cell_items_[k];
        if (distance2(point, positions_[j]) <= r2) fn(j);
      }
    }
  }
}

std::vector<std::size_t> SpatialGrid::query(Vec2 point, double radius) const {
  std::vector<std::size_t> out;
  for_each_within(point, radius, [&](std::size_t j) { out.push_back(j); });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace agentnet
