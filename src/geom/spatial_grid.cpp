#include "geom/spatial_grid.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace agentnet {

SpatialGrid::SpatialGrid(Aabb bounds, double cell_size)
    : bounds_(bounds), cell_size_(cell_size) {
  AGENTNET_REQUIRE(std::isfinite(cell_size) && cell_size > 0.0,
                   "spatial grid cell size must be finite and > 0");
  AGENTNET_REQUIRE(
      std::isfinite(bounds.lo.x) && std::isfinite(bounds.lo.y) &&
          std::isfinite(bounds.hi.x) && std::isfinite(bounds.hi.y),
      "spatial grid bounds must be finite");
  AGENTNET_REQUIRE(bounds.width() > 0.0 && bounds.height() > 0.0,
                   "spatial grid bounds must have positive area");
  // Cell counts in double first: a direct ceil()-and-cast overflows int for
  // huge bounds ÷ small cells. Coarsen the cell size (doubling terminates:
  // eventually one cell covers each axis) until the grid fits kMaxCells.
  const auto cells_for = [](double extent, double cs) {
    const double c = std::ceil(extent / cs);
    return c < 1.0 ? 1.0 : c;
  };
  const auto max_cells = static_cast<double>(kMaxCells);
  while (cells_for(bounds.width(), cell_size_) *
             cells_for(bounds.height(), cell_size_) >
         max_cells)
    cell_size_ *= 2.0;
  cols_ = static_cast<int>(cells_for(bounds.width(), cell_size_));
  rows_ = static_cast<int>(cells_for(bounds.height(), cell_size_));
  cells_.resize(static_cast<std::size_t>(cols_) * rows_);
}

void SpatialGrid::cell_coords(Vec2 p, int& cx, int& cy) const {
  const Vec2 q = bounds_.clamp(p);
  cx = std::min(cols_ - 1,
                static_cast<int>((q.x - bounds_.lo.x) / cell_size_));
  cy = std::min(rows_ - 1,
                static_cast<int>((q.y - bounds_.lo.y) / cell_size_));
}

void SpatialGrid::rebuild(const std::vector<Vec2>& positions) {
  positions_.assign(positions.begin(), positions.end());
  for (auto& cell : cells_) cell.clear();  // capacity survives
  home_.resize(positions_.size());
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    int cx, cy;
    cell_coords(positions_[i], cx, cy);
    home_[i] = static_cast<std::uint32_t>(cell_index(cx, cy));
    cells_[home_[i]].push_back(static_cast<std::uint32_t>(i));
  }
}

bool SpatialGrid::move(std::size_t i, Vec2 p) {
  AGENTNET_ASSERT(i < positions_.size());
  positions_[i] = p;
  int cx, cy;
  cell_coords(p, cx, cy);
  const auto cell = static_cast<std::uint32_t>(cell_index(cx, cy));
  if (cell == home_[i]) return false;
  // Swap-erase from the old bucket: bucket order carries no meaning.
  auto& old_bucket = cells_[home_[i]];
  for (std::size_t k = 0; k < old_bucket.size(); ++k) {
    if (old_bucket[k] == static_cast<std::uint32_t>(i)) {
      old_bucket[k] = old_bucket.back();
      old_bucket.pop_back();
      break;
    }
  }
  cells_[cell].push_back(static_cast<std::uint32_t>(i));
  home_[i] = cell;
  return true;
}

std::vector<std::size_t> SpatialGrid::query(Vec2 point, double radius) const {
  std::vector<std::size_t> out;
  query(point, radius, out);
  return out;
}

void SpatialGrid::query(Vec2 point, double radius,
                        std::vector<std::size_t>& out) const {
  out.clear();
  for_each_within(point, radius, [&](std::size_t j) { out.push_back(j); });
  std::sort(out.begin(), out.end());
}

std::size_t SpatialGrid::heap_bytes() const {
  std::size_t bytes = positions_.capacity() * sizeof(Vec2) +
                      home_.capacity() * sizeof(std::uint32_t) +
                      cells_.capacity() * sizeof(cells_[0]);
  for (const auto& bucket : cells_)
    bytes += bucket.capacity() * sizeof(std::uint32_t);
  return bytes;
}

}  // namespace agentnet
