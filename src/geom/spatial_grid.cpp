#include "geom/spatial_grid.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace agentnet {

SpatialGrid::SpatialGrid(Aabb bounds, double cell_size)
    : bounds_(bounds), cell_size_(cell_size) {
  AGENTNET_REQUIRE(cell_size > 0.0, "spatial grid cell size must be > 0");
  AGENTNET_REQUIRE(bounds.width() > 0.0 && bounds.height() > 0.0,
                   "spatial grid bounds must have positive area");
  cols_ = std::max(1, static_cast<int>(std::ceil(bounds.width() / cell_size)));
  rows_ =
      std::max(1, static_cast<int>(std::ceil(bounds.height() / cell_size)));
  cell_start_.assign(static_cast<std::size_t>(cols_) * rows_ + 1, 0);
}

void SpatialGrid::cell_coords(Vec2 p, int& cx, int& cy) const {
  const Vec2 q = bounds_.clamp(p);
  cx = std::min(cols_ - 1,
                static_cast<int>((q.x - bounds_.lo.x) / cell_size_));
  cy = std::min(rows_ - 1,
                static_cast<int>((q.y - bounds_.lo.y) / cell_size_));
}

void SpatialGrid::rebuild(const std::vector<Vec2>& positions) {
  positions_.assign(positions.begin(), positions.end());
  const std::size_t cells = static_cast<std::size_t>(cols_) * rows_;
  // Counting pass into cell_start_ (shifted by one so the prefix sum lands
  // in place), then a cursor pass scatters each index into its home cell.
  cell_start_.assign(cells + 1, 0);
  home_.resize(positions_.size());
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    int cx, cy;
    cell_coords(positions_[i], cx, cy);
    home_[i] = static_cast<std::uint32_t>(cell_index(cx, cy));
    ++cell_start_[home_[i] + 1];
  }
  for (std::size_t c = 0; c < cells; ++c)
    cell_start_[c + 1] += cell_start_[c];
  cell_items_.resize(positions_.size());
  cursor_.assign(cell_start_.begin(), cell_start_.end() - 1);
  for (std::size_t i = 0; i < positions_.size(); ++i)
    cell_items_[cursor_[home_[i]]++] = static_cast<std::uint32_t>(i);
}

std::vector<std::size_t> SpatialGrid::query(Vec2 point, double radius) const {
  std::vector<std::size_t> out;
  query(point, radius, out);
  return out;
}

void SpatialGrid::query(Vec2 point, double radius,
                        std::vector<std::size_t>& out) const {
  out.clear();
  for_each_within(point, radius, [&](std::size_t j) { out.push_back(j); });
  std::sort(out.begin(), out.end());
}

}  // namespace agentnet
