// 2-D vector math for node positions and movement.
#pragma once

#include <cmath>

namespace agentnet {

/// Plain 2-D vector; value type, no invariants.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }
  constexpr bool operator==(const Vec2&) const = default;

  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  constexpr double norm2() const { return x * x + y * y; }
  double norm() const { return std::sqrt(norm2()); }

  /// Unit vector in the same direction; the zero vector maps to itself.
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
constexpr double distance2(Vec2 a, Vec2 b) { return (a - b).norm2(); }

/// Axis-aligned rectangle [lo, hi]; the simulation arena.
struct Aabb {
  Vec2 lo;
  Vec2 hi;

  constexpr double width() const { return hi.x - lo.x; }
  constexpr double height() const { return hi.y - lo.y; }
  constexpr bool contains(Vec2 p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }
  /// Clamps p into the box.
  constexpr Vec2 clamp(Vec2 p) const {
    return {p.x < lo.x ? lo.x : (p.x > hi.x ? hi.x : p.x),
            p.y < lo.y ? lo.y : (p.y > hi.y ? hi.y : p.y)};
  }
};

}  // namespace agentnet
