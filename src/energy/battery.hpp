// Battery model. The paper's dynamic-routing network assumes mobile nodes
// "run on battery power ... their radio range decrease[s] as time goes by";
// the mapping network assumes "degradation on a percentage of radio links
// due to rely[ing] on battery power". Both are driven by this model plus
// the range scaling in radio/range_model.hpp.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "snapshot/bytes.hpp"

namespace agentnet {

/// Parameters for one battery. A mains-powered node uses drain_per_step=0.
struct BatteryParams {
  double capacity = 1.0;        ///< Initial charge (arbitrary units, > 0).
  double drain_per_step = 0.0;  ///< Charge consumed per simulation step.
};

/// One node's battery; charge never drops below zero.
class Battery {
 public:
  Battery() = default;
  explicit Battery(BatteryParams params);

  /// Advances one simulation step.
  void step();

  double charge() const { return charge_; }
  /// Remaining fraction of the initial capacity, in [0, 1].
  double fraction() const { return charge_ / params_.capacity; }
  bool depleted() const { return charge_ <= 0.0; }
  const BatteryParams& params() const { return params_; }

  /// Checkpoint support: only the charge — params are config-derived and
  /// already in place when a checkpoint is restored.
  void save_state(snapshot::ByteWriter& w) const { w.f64(charge_); }
  void load_state(snapshot::ByteReader& r) { charge_ = r.f64(); }

 private:
  BatteryParams params_{};
  double charge_ = 1.0;
};

/// Batteries for a whole network: a boolean mask selects which nodes are
/// battery-powered (drain > 0); the rest are mains-powered and never decay.
class BatteryBank {
 public:
  BatteryBank(std::size_t node_count, const std::vector<bool>& on_battery,
              BatteryParams battery_params);

  void step();

  std::size_t size() const { return batteries_.size(); }
  bool on_battery(std::size_t node) const;
  /// Remaining fraction for `node`; mains-powered nodes report 1.0 forever.
  double fraction(std::size_t node) const;
  const Battery& battery(std::size_t node) const;

  /// Checkpoint support: per-node charges and the step counter. The
  /// on-battery mask is config-derived and not carried.
  void save_state(snapshot::ByteWriter& w) const {
    w.size(batteries_.size());
    for (const Battery& b : batteries_) b.save_state(w);
    w.size(tick_);
  }
  void load_state(snapshot::ByteReader& r) {
    const std::size_t n = r.counted(8);
    AGENTNET_REQUIRE(n == batteries_.size(),
                     "snapshot: battery count mismatch");
    for (Battery& b : batteries_) b.load_state(r);
    tick_ = r.size();
  }

 private:
  std::vector<Battery> batteries_;
  std::vector<bool> on_battery_;
  std::size_t tick_ = 0;  ///< Steps advanced; timestamps depletion events.
};

}  // namespace agentnet
