#include "energy/battery.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace agentnet {

Battery::Battery(BatteryParams params) : params_(params) {
  AGENTNET_REQUIRE(params.capacity > 0.0, "battery capacity must be > 0");
  AGENTNET_REQUIRE(params.drain_per_step >= 0.0,
                   "battery drain must be >= 0");
  charge_ = params.capacity;
}

void Battery::step() {
  charge_ = std::max(0.0, charge_ - params_.drain_per_step);
}

BatteryBank::BatteryBank(std::size_t node_count,
                         const std::vector<bool>& on_battery,
                         BatteryParams battery_params)
    : on_battery_(on_battery) {
  AGENTNET_REQUIRE(on_battery.size() == node_count,
                   "battery mask size must equal node count");
  batteries_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    BatteryParams p = battery_params;
    if (!on_battery_[i]) p.drain_per_step = 0.0;
    batteries_.emplace_back(p);
  }
}

void BatteryBank::step() {
  ++tick_;
  for (std::size_t i = 0; i < batteries_.size(); ++i) {
    Battery& b = batteries_[i];
    const bool was_alive = !b.depleted();
    b.step();
    if (was_alive && b.depleted()) {
      AGENTNET_COUNT(kBatteryDeaths);
      AGENTNET_OBS_EVENT(kBatteryDeath, tick_, -1,
                         static_cast<std::int64_t>(i));
    }
  }
}

bool BatteryBank::on_battery(std::size_t node) const {
  AGENTNET_ASSERT(node < on_battery_.size());
  return on_battery_[node];
}

double BatteryBank::fraction(std::size_t node) const {
  AGENTNET_ASSERT(node < batteries_.size());
  return on_battery_[node] ? batteries_[node].fraction() : 1.0;
}

const Battery& BatteryBank::battery(std::size_t node) const {
  AGENTNET_ASSERT(node < batteries_.size());
  return batteries_[node];
}

}  // namespace agentnet
