// Gateway load balancing for the stigmergetic control plane.
//
// The paper's networks have several gateways, and the routing layers send
// every packet toward *some* gateway — nothing stops the pheromone field
// from funnelling a whole region onto one of them while its neighbours sit
// idle. The balancer watches per-gateway delivered traffic (an EWMA of
// FlowTrafficSimulator::gateway_deliveries()) and produces a per-gateway
// deposit multiplier: underloaded gateways get bias > 1, overloaded ones
// bias < 1, so backward ants gradually steer new traffic toward spare
// capacity. The bias is exactly 1.0 everywhere while no traffic has been
// observed, which keeps zero-load runs bit-identical to unbalanced ones
// (see docs/TRAFFIC.md).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/graph.hpp"
#include "snapshot/bytes.hpp"

namespace agentnet {

struct GatewayBalancerConfig {
  /// EWMA factor per step: load ← (1-smoothing)·load + smoothing·delivered.
  double smoothing = 0.1;
  /// Bias exponent; 0 disables balancing (bias ≡ 1), 1 is proportional.
  double strength = 1.0;

  /// Reads AGENTNET_TRAFFIC_BALANCE_SMOOTHING and
  /// AGENTNET_TRAFFIC_BALANCE_STRENGTH over these defaults.
  static GatewayBalancerConfig from_env();
  void validate() const;
};

class GatewayBalancer {
 public:
  GatewayBalancer(std::size_t node_count, std::vector<bool> is_gateway,
                  GatewayBalancerConfig config);

  /// Folds one step's per-node delivered counts (zeros for non-gateways)
  /// into the load EWMA and recomputes the bias vector.
  void observe(std::span<const std::uint64_t> deliveries);

  /// Per-node deposit multiplier, ((mean + load_g) in the denominator
  /// bounds it to (0, 2^strength]):
  ///   bias[g] = (2·mean / (load[g] + mean))^strength
  /// Exactly 1.0 for every node while the mean load is zero, and 1.0 at
  /// gateways carrying exactly the mean load.
  const std::vector<double>& bias() const { return bias_; }

  /// Smoothed per-node delivered load (non-gateways stay 0).
  const std::vector<double>& load() const { return load_; }

  /// Checkpoint support: the EWMA state and derived bias vector; config
  /// and gateway mask are reconstructed from the task config.
  void save_state(snapshot::ByteWriter& w) const {
    w.pod_vec(load_);
    w.pod_vec(bias_);
  }
  void load_state(snapshot::ByteReader& r) {
    r.pod_vec(load_);
    r.pod_vec(bias_);
    AGENTNET_REQUIRE(load_.size() == is_gateway_.size() &&
                         bias_.size() == is_gateway_.size(),
                     "snapshot: balancer size mismatch");
  }

 private:
  GatewayBalancerConfig config_;
  std::vector<bool> is_gateway_;
  std::size_t gateway_count_ = 0;
  std::vector<double> load_;
  std::vector<double> bias_;
};

}  // namespace agentnet
