// Per-node routing tables maintained exclusively by mobile agents.
//
// The paper: "Every node has a simple routing table which agents update
// frequently. The nodes themselves run no programs; all topology mapping
// relies on the operation of the agents." A table holds the node's current
// best route toward *some* gateway (next hop + hop estimate + install time);
// agents offer candidate routes and the table keeps the better one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/graph.hpp"
#include "snapshot/bytes.hpp"

namespace agentnet {

struct RouteEntry {
  NodeId next_hop = kInvalidNode;
  NodeId gateway = kInvalidNode;
  std::uint32_t hops = 0;          ///< Estimated hops to `gateway`.
  std::size_t installed_at = 0;    ///< Simulation step of installation.

  bool valid() const { return next_hop != kInvalidNode; }
  friend bool operator==(const RouteEntry&, const RouteEntry&) = default;
};

/// Route-replacement policy knobs.
struct RoutePolicy {
  /// An entry older than this many steps is considered stale: any fresh
  /// candidate beats it regardless of hop count. In a mobile network old
  /// routes rot as links break, so freshness dominates eventually.
  std::size_t freshness_window = 30;
};

class RoutingTables {
 public:
  RoutingTables(std::size_t node_count, RoutePolicy policy = {});

  std::size_t size() const { return entries_.size(); }
  const RouteEntry& entry(NodeId node) const;
  /// The full per-node entry array (epoch-keyed caches compare it to
  /// detect table changes between measurements).
  const std::vector<RouteEntry>& entries() const { return entries_; }
  const RoutePolicy& policy() const { return policy_; }

  /// Offers a candidate route for `node` at time `now`; keeps the better of
  /// (existing, candidate) per the policy. Returns true when the candidate
  /// was installed.
  bool offer(NodeId node, const RouteEntry& candidate, std::size_t now);

  /// Unconditionally installs (tests / oracle seeding).
  void force(NodeId node, const RouteEntry& entry);
  void clear(NodeId node);
  void clear_all();

  bool is_stale(const RouteEntry& entry, std::size_t now) const {
    return !entry.valid() || now - entry.installed_at > policy_.freshness_window;
  }

  /// Checkpoint support: every entry; the policy is config-derived.
  void save_state(snapshot::ByteWriter& w) const {
    w.size(entries_.size());
    for (const RouteEntry& e : entries_) {
      w.scalar(e.next_hop);
      w.scalar(e.gateway);
      w.scalar(e.hops);
      w.size(e.installed_at);
    }
  }
  void load_state(snapshot::ByteReader& r) {
    const std::size_t n = r.counted(4 * 8);
    AGENTNET_REQUIRE(n == entries_.size(),
                     "snapshot: routing table size mismatch");
    for (RouteEntry& e : entries_) {
      e.next_hop = r.scalar<NodeId>();
      e.gateway = r.scalar<NodeId>();
      e.hops = r.scalar<std::uint32_t>();
      e.installed_at = r.size();
    }
  }

 private:
  std::vector<RouteEntry> entries_;
  RoutePolicy policy_;
};

}  // namespace agentnet
