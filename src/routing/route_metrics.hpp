// Diagnostics over a routing-table snapshot: how long the installed routes
// are, how stale, and how evenly the gateways carry the load. Used by
// examples and tests; the connectivity metric itself lives in
// routing/connectivity.hpp.
#pragma once

#include <cstddef>
#include <vector>

#include "common/stats.hpp"
#include "net/graph.hpp"
#include "routing/routing_table.hpp"

namespace agentnet {

struct RouteTableReport {
  std::size_t entries = 0;        ///< Nodes holding any route.
  std::size_t valid_entries = 0;  ///< Entries whose walk reaches a gateway
                                  ///< over live links right now.
  RunningStats hops;              ///< Advertised hop counts of all entries.
  RunningStats age;               ///< now − installed_at of all entries.
  /// Nodes whose current *valid* route targets each gateway, indexed by
  /// gateway node id (zero for non-gateway ids).
  std::vector<std::size_t> gateway_load;

  /// Load imbalance across gateways: max load / mean load over gateways
  /// that serve at least one node; 0 when nothing is routed.
  double load_imbalance() const;
};

/// Walks every entry like the connectivity metric, but attributes each
/// connected node to the gateway its chain actually reaches (which can
/// differ from the entry's advertised gateway after churn).
RouteTableReport analyze_tables(const Graph& graph,
                                const RoutingTables& tables,
                                const std::vector<bool>& is_gateway,
                                std::size_t now);

}  // namespace agentnet
