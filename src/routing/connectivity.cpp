#include "routing/connectivity.hpp"

#include <queue>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace agentnet {

namespace {

// Templated over Graph / CsrView: both expose node_count() and has_edge()
// and the walk logic is identical, so either representation yields the same
// flags bit for bit.
template <class AnyGraph>
std::vector<bool> valid_route_flags_impl(const AnyGraph& graph,
                                         const RoutingTables& tables,
                                         const std::vector<bool>& is_gateway,
                                         std::size_t max_hops) {
  const std::size_t n = graph.node_count();
  AGENTNET_REQUIRE(tables.size() == n, "tables/graph size mismatch");
  AGENTNET_REQUIRE(is_gateway.size() == n, "gateway mask size mismatch");
  std::vector<bool> valid(n, false);
  if (max_hops != 0 && max_hops < n) {
    // A tight hop budget makes validity depend on the remaining budget at
    // each node, so verdicts cannot be shared between walks; do exact
    // independent walks (still cheap: budget bounds each one).
    for (NodeId start = 0; start < n; ++start) {
      NodeId u = start;
      std::size_t hops = 0;
      while (!is_gateway[u] && hops < max_hops) {
        const RouteEntry& e = tables.entry(u);
        if (!e.valid() || !graph.has_edge(u, e.next_hop)) break;
        u = e.next_hop;
        ++hops;
      }
      valid[start] = is_gateway[u];
    }
    for (NodeId v = 0; v < n; ++v)
      if (is_gateway[v]) valid[v] = true;
    return valid;
  }
  max_hops = n;
  // Walks are memoised per measurement: 0 unknown, 1 good, 2 bad/visiting.
  std::vector<char> state(n, 0);
  for (NodeId start = 0; start < n; ++start) {
    if (state[start] != 0) {
      valid[start] = state[start] == 1;
      continue;
    }
    std::vector<NodeId> path;
    NodeId u = start;
    std::size_t hops = 0;
    char verdict = 2;
    while (true) {
      if (is_gateway[u] || state[u] == 1) {
        verdict = 1;
        break;
      }
      if (state[u] == 2) break;  // known dead end
      const RouteEntry& e = tables.entry(u);
      if (!e.valid() || hops >= max_hops) break;
      if (!graph.has_edge(u, e.next_hop)) break;  // link is gone right now
      state[u] = 2;  // mark visiting: revisiting it means a loop
      path.push_back(u);
      u = e.next_hop;
      ++hops;
    }
    for (NodeId v : path) state[v] = verdict;
    if (state[start] == 0) state[start] = verdict;  // start was a gateway
    valid[start] = verdict == 1;
  }
  for (NodeId v = 0; v < n; ++v)
    if (is_gateway[v]) valid[v] = true;
  return valid;
}

template <class AnyGraph>
ConnectivityResult measure_connectivity_impl(
    const AnyGraph& graph, const RoutingTables& tables,
    const std::vector<bool>& is_gateway, std::size_t max_hops) {
  const auto valid =
      valid_route_flags_impl(graph, tables, is_gateway, max_hops);
  ConnectivityResult result;
  result.total = valid.size();
  for (bool v : valid)
    if (v) ++result.connected;
  return result;
}

/// Chunk-local memo for the parallel walk (one per engine chunk).
struct WalkScratch {
  std::vector<char> state;
  std::vector<NodeId> path;
};

// Parallel walk: roots fan over the agent engine, each chunk carrying its
// own memo. A verdict is an exact property of (graph, tables, mask) — the
// memo only short-circuits walks that would reach the same answer — so the
// flags match the serial walk bit for bit. Workers write byte slots
// (vector<bool> packs bits into shared words and would race).
template <class AnyGraph>
std::vector<bool> valid_route_flags_par_impl(
    const AnyGraph& graph, const RoutingTables& tables,
    const std::vector<bool>& is_gateway, std::size_t max_hops,
    const AgentParallel& par) {
  const std::size_t n = graph.node_count();
  if (!par.active() || n < 2)
    return valid_route_flags_impl(graph, tables, is_gateway, max_hops);
  AGENTNET_REQUIRE(tables.size() == n, "tables/graph size mismatch");
  AGENTNET_REQUIRE(is_gateway.size() == n, "gateway mask size mismatch");
  std::vector<char> flags(n, 0);
  if (max_hops != 0 && max_hops < n) {
    // Tight hop budget: walks are exact and independent per root.
    par.for_each(n, [&](std::size_t root) {
      NodeId u = static_cast<NodeId>(root);
      std::size_t hops = 0;
      while (!is_gateway[u] && hops < max_hops) {
        const RouteEntry& e = tables.entry(u);
        if (!e.valid() || !graph.has_edge(u, e.next_hop)) break;
        u = e.next_hop;
        ++hops;
      }
      flags[root] = is_gateway[u] ? 1 : 0;
    });
  } else {
    const std::size_t budget = n;
    par.for_each_scratch(
        n, [n] { return WalkScratch{std::vector<char>(n, 0), {}}; },
        [&](std::size_t root, WalkScratch& s) {
          const NodeId start = static_cast<NodeId>(root);
          if (s.state[start] != 0) {
            flags[root] = s.state[start] == 1 ? 1 : 0;
            return;
          }
          s.path.clear();
          NodeId u = start;
          std::size_t hops = 0;
          char verdict = 2;
          while (true) {
            if (is_gateway[u] || s.state[u] == 1) {
              verdict = 1;
              break;
            }
            if (s.state[u] == 2) break;  // known dead end / loop
            const RouteEntry& e = tables.entry(u);
            if (!e.valid() || hops >= budget) break;
            if (!graph.has_edge(u, e.next_hop)) break;
            s.state[u] = 2;
            s.path.push_back(u);
            u = e.next_hop;
            ++hops;
          }
          for (NodeId v : s.path) s.state[v] = verdict;
          if (s.state[start] == 0) s.state[start] = verdict;
          flags[root] = verdict == 1 ? 1 : 0;
        });
  }
  std::vector<bool> valid(n, false);
  for (NodeId v = 0; v < n; ++v)
    valid[v] = is_gateway[v] || flags[v] != 0;
  return valid;
}

template <class AnyGraph>
ConnectivityResult measure_connectivity_par_impl(
    const AnyGraph& graph, const RoutingTables& tables,
    const std::vector<bool>& is_gateway, std::size_t max_hops,
    const AgentParallel& par) {
  const auto valid =
      valid_route_flags_par_impl(graph, tables, is_gateway, max_hops, par);
  ConnectivityResult result;
  result.total = valid.size();
  for (bool v : valid)
    if (v) ++result.connected;
  return result;
}

template <class AnyGraph>
ConnectivityResult oracle_connectivity_impl(
    const AnyGraph& graph, const std::vector<bool>& is_gateway,
    const Graph& rev) {
  const std::size_t n = graph.node_count();
  AGENTNET_REQUIRE(is_gateway.size() == n, "gateway mask size mismatch");
  // A node is potentially connected iff it reaches a gateway along edge
  // directions; BFS from all gateways over *incoming* edges.
  std::vector<bool> reach(n, false);
  std::queue<NodeId> frontier;
  for (NodeId v = 0; v < n; ++v) {
    if (is_gateway[v]) {
      reach[v] = true;
      frontier.push(v);
    }
  }
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId w : rev.out_neighbors(u)) {
      if (!reach[w]) {
        reach[w] = true;
        frontier.push(w);
      }
    }
  }
  ConnectivityResult result;
  result.total = n;
  for (bool r : reach)
    if (r) ++result.connected;
  return result;
}

}  // namespace

std::vector<bool> valid_route_flags(const Graph& graph,
                                    const RoutingTables& tables,
                                    const std::vector<bool>& is_gateway,
                                    std::size_t max_hops) {
  return valid_route_flags_impl(graph, tables, is_gateway, max_hops);
}

std::vector<bool> valid_route_flags(const CsrView& graph,
                                    const RoutingTables& tables,
                                    const std::vector<bool>& is_gateway,
                                    std::size_t max_hops) {
  return valid_route_flags_impl(graph, tables, is_gateway, max_hops);
}

ConnectivityResult measure_connectivity(const Graph& graph,
                                        const RoutingTables& tables,
                                        const std::vector<bool>& is_gateway,
                                        std::size_t max_hops) {
  return measure_connectivity_impl(graph, tables, is_gateway, max_hops);
}

ConnectivityResult measure_connectivity(const CsrView& graph,
                                        const RoutingTables& tables,
                                        const std::vector<bool>& is_gateway,
                                        std::size_t max_hops) {
  return measure_connectivity_impl(graph, tables, is_gateway, max_hops);
}

std::vector<bool> valid_route_flags(const Graph& graph,
                                    const RoutingTables& tables,
                                    const std::vector<bool>& is_gateway,
                                    std::size_t max_hops,
                                    const AgentParallel& par) {
  return valid_route_flags_par_impl(graph, tables, is_gateway, max_hops, par);
}

std::vector<bool> valid_route_flags(const CsrView& graph,
                                    const RoutingTables& tables,
                                    const std::vector<bool>& is_gateway,
                                    std::size_t max_hops,
                                    const AgentParallel& par) {
  return valid_route_flags_par_impl(graph, tables, is_gateway, max_hops, par);
}

ConnectivityResult measure_connectivity(const Graph& graph,
                                        const RoutingTables& tables,
                                        const std::vector<bool>& is_gateway,
                                        std::size_t max_hops,
                                        const AgentParallel& par) {
  return measure_connectivity_par_impl(graph, tables, is_gateway, max_hops,
                                       par);
}

ConnectivityResult measure_connectivity(const CsrView& graph,
                                        const RoutingTables& tables,
                                        const std::vector<bool>& is_gateway,
                                        std::size_t max_hops,
                                        const AgentParallel& par) {
  return measure_connectivity_par_impl(graph, tables, is_gateway, max_hops,
                                       par);
}

ConnectivityResult oracle_connectivity(const Graph& graph,
                                       const std::vector<bool>& is_gateway) {
  Graph rev;
  graph.transposed_into(rev);
  return oracle_connectivity_impl(graph, is_gateway, rev);
}

ConnectivityResult ConnectivityCache::measure(
    const World& world, const RoutingTables& tables,
    const std::vector<bool>& is_gateway, std::size_t max_hops) {
  return measure(world, tables, is_gateway, max_hops, AgentParallel());
}

ConnectivityResult ConnectivityCache::measure(
    const World& world, const RoutingTables& tables,
    const std::vector<bool>& is_gateway, std::size_t max_hops,
    const AgentParallel& par) {
  if (epoch_ != kNoCacheEpoch && epoch_ == world.epoch() &&
      max_hops_ == max_hops && entries_ == tables.entries()) {
    AGENTNET_COUNT(kDerivedCacheHits);
    return result_;
  }
  result_ =
      measure_connectivity(world.csr(), tables, is_gateway, max_hops, par);
  epoch_ = world.epoch();
  max_hops_ = max_hops;
  entries_ = tables.entries();  // assign reuses capacity across steps
  return result_;
}

ConnectivityResult OracleConnectivityCache::measure(
    std::uint64_t epoch, const Graph& graph,
    const std::vector<bool>& is_gateway) {
  if (epoch != kNoCacheEpoch && epoch == epoch_) {
    AGENTNET_COUNT(kDerivedCacheHits);
    return result_;
  }
  graph.transposed_into(reversed_);
  result_ = oracle_connectivity_impl(graph, is_gateway, reversed_);
  epoch_ = epoch;
  return result_;
}

}  // namespace agentnet
