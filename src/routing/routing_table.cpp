#include "routing/routing_table.hpp"

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace agentnet {

RoutingTables::RoutingTables(std::size_t node_count, RoutePolicy policy)
    : entries_(node_count), policy_(policy) {
  AGENTNET_REQUIRE(policy.freshness_window > 0,
                   "freshness window must be > 0");
}

const RouteEntry& RoutingTables::entry(NodeId node) const {
  AGENTNET_ASSERT(node < entries_.size());
  return entries_[node];
}

bool RoutingTables::offer(NodeId node, const RouteEntry& candidate,
                          std::size_t now) {
  AGENTNET_ASSERT(node < entries_.size());
  AGENTNET_REQUIRE(candidate.valid(), "cannot offer an invalid route");
  RouteEntry& current = entries_[node];
  bool install = false;
  if (!current.valid()) {
    install = true;
  } else if (is_stale(current, now)) {
    // A rotten route loses to anything fresh.
    install = true;
  } else if (candidate.hops < current.hops) {
    install = true;
  } else if (candidate.hops == current.hops &&
             candidate.installed_at >= current.installed_at) {
    install = true;  // same length, fresher timestamp
  }
  if (install) {
    current = candidate;
    AGENTNET_COUNT(kRouteTableUpdates);
  }
  return install;
}

void RoutingTables::force(NodeId node, const RouteEntry& entry) {
  AGENTNET_ASSERT(node < entries_.size());
  entries_[node] = entry;
}

void RoutingTables::clear(NodeId node) {
  AGENTNET_ASSERT(node < entries_.size());
  entries_[node] = RouteEntry{};
}

void RoutingTables::clear_all() {
  for (auto& e : entries_) e = RouteEntry{};
}

}  // namespace agentnet
