// The paper's system-performance measure for dynamic routing:
// "the fraction of nodes in the system that has a valid route to at least
// one gateway". A route is valid when following next-hops from the node
// reaches a gateway over links that exist *right now*, without looping.
#pragma once

#include <cstddef>
#include <vector>

#include "net/graph.hpp"
#include "routing/routing_table.hpp"

namespace agentnet {

struct ConnectivityResult {
  std::size_t connected = 0;  ///< Nodes with a valid gateway route.
  std::size_t total = 0;      ///< All nodes (gateways count as connected).
  double fraction() const {
    return total == 0 ? 0.0
                      : static_cast<double>(connected) /
                            static_cast<double>(total);
  }
};

/// Walks every node's routing-table chain over the live `graph`.
/// `is_gateway[i]` marks gateway nodes (always connected). `max_hops`
/// bounds the walk; 0 means node_count (any simple path fits).
ConnectivityResult measure_connectivity(const Graph& graph,
                                        const RoutingTables& tables,
                                        const std::vector<bool>& is_gateway,
                                        std::size_t max_hops = 0);
/// CSR variant — bit-identical result; measurement phases iterate the
/// frozen snapshot instead of the vector-of-vectors graph.
ConnectivityResult measure_connectivity(const CsrView& graph,
                                        const RoutingTables& tables,
                                        const std::vector<bool>& is_gateway,
                                        std::size_t max_hops = 0);

/// Per-node validity flags from the same walk (diagnostics / tests).
std::vector<bool> valid_route_flags(const Graph& graph,
                                    const RoutingTables& tables,
                                    const std::vector<bool>& is_gateway,
                                    std::size_t max_hops = 0);
std::vector<bool> valid_route_flags(const CsrView& graph,
                                    const RoutingTables& tables,
                                    const std::vector<bool>& is_gateway,
                                    std::size_t max_hops = 0);

/// Upper bound no agent system can beat: the fraction of nodes with *any*
/// live path to a gateway in `graph` (multi-source BFS on reversed edges).
ConnectivityResult oracle_connectivity(const Graph& graph,
                                       const std::vector<bool>& is_gateway);

}  // namespace agentnet
