// The paper's system-performance measure for dynamic routing:
// "the fraction of nodes in the system that has a valid route to at least
// one gateway". A route is valid when following next-hops from the node
// reaches a gateway over links that exist *right now*, without looping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/agent_parallel.hpp"
#include "net/graph.hpp"
#include "routing/routing_table.hpp"
#include "sim/world.hpp"
#include "snapshot/bytes.hpp"

namespace agentnet {

struct ConnectivityResult {
  std::size_t connected = 0;  ///< Nodes with a valid gateway route.
  std::size_t total = 0;      ///< All nodes (gateways count as connected).
  double fraction() const {
    return total == 0 ? 0.0
                      : static_cast<double>(connected) /
                            static_cast<double>(total);
  }
};

/// Walks every node's routing-table chain over the live `graph`.
/// `is_gateway[i]` marks gateway nodes (always connected). `max_hops`
/// bounds the walk; 0 means node_count (any simple path fits).
ConnectivityResult measure_connectivity(const Graph& graph,
                                        const RoutingTables& tables,
                                        const std::vector<bool>& is_gateway,
                                        std::size_t max_hops = 0);
/// CSR variant — bit-identical result; measurement phases iterate the
/// frozen snapshot instead of the vector-of-vectors graph.
ConnectivityResult measure_connectivity(const CsrView& graph,
                                        const RoutingTables& tables,
                                        const std::vector<bool>& is_gateway,
                                        std::size_t max_hops = 0);

/// Per-node validity flags from the same walk (diagnostics / tests).
std::vector<bool> valid_route_flags(const Graph& graph,
                                    const RoutingTables& tables,
                                    const std::vector<bool>& is_gateway,
                                    std::size_t max_hops = 0);
std::vector<bool> valid_route_flags(const CsrView& graph,
                                    const RoutingTables& tables,
                                    const std::vector<bool>& is_gateway,
                                    std::size_t max_hops = 0);

/// Parallel variants: the per-root walks fan over the agent engine with
/// chunk-local memoisation. A verdict ("this node reaches a gateway over
/// valid next-hops right now") is an exact property of (graph, tables,
/// mask) — memo state only short-circuits, never changes an answer — so
/// the flags are bit-identical to the serial walk at any thread count.
/// An inactive engine takes the exact serial path.
std::vector<bool> valid_route_flags(const Graph& graph,
                                    const RoutingTables& tables,
                                    const std::vector<bool>& is_gateway,
                                    std::size_t max_hops,
                                    const AgentParallel& par);
std::vector<bool> valid_route_flags(const CsrView& graph,
                                    const RoutingTables& tables,
                                    const std::vector<bool>& is_gateway,
                                    std::size_t max_hops,
                                    const AgentParallel& par);
ConnectivityResult measure_connectivity(const Graph& graph,
                                        const RoutingTables& tables,
                                        const std::vector<bool>& is_gateway,
                                        std::size_t max_hops,
                                        const AgentParallel& par);
ConnectivityResult measure_connectivity(const CsrView& graph,
                                        const RoutingTables& tables,
                                        const std::vector<bool>& is_gateway,
                                        std::size_t max_hops,
                                        const AgentParallel& par);

/// Upper bound no agent system can beat: the fraction of nodes with *any*
/// live path to a gateway in `graph` (multi-source BFS on reversed edges).
ConnectivityResult oracle_connectivity(const Graph& graph,
                                       const std::vector<bool>& is_gateway);

/// Epoch sentinel forcing a cache miss (used when the measured graph is not
/// the world's own — e.g. a fault-masked view — so World::epoch() does not
/// version it).
inline constexpr std::uint64_t kNoCacheEpoch =
    static_cast<std::uint64_t>(-1);

/// Memoises measure_connectivity across steps. The walk result is a pure
/// function of (graph, tables, gateway mask, max_hops); the gateway mask is
/// fixed per run, so the cache keys on World::epoch() (bumped exactly when
/// the edge set changes) plus a copy of the table contents. A hit re-emits
/// the stored result — bit-identical, since the inputs are — and counts
/// kDerivedCacheHits; a miss walks the world's frozen CSR snapshot exactly
/// like the uncached path.
class ConnectivityCache {
 public:
  ConnectivityResult measure(const World& world, const RoutingTables& tables,
                             const std::vector<bool>& is_gateway,
                             std::size_t max_hops = 0);

  /// Parallel variant: a miss walks with the engine's per-root fan-out
  /// (bit-identical flags); the hit path is unchanged.
  ConnectivityResult measure(const World& world, const RoutingTables& tables,
                             const std::vector<bool>& is_gateway,
                             std::size_t max_hops, const AgentParallel& par);

  /// Checkpoint support: the cache MUST travel with the run — a hit emits
  /// kDerivedCacheHits, so a cold cache after resume would change counter
  /// totals vs. the uninterrupted run.
  void save_state(snapshot::ByteWriter& w) const {
    w.u64(epoch_);
    w.size(max_hops_);
    w.size(entries_.size());
    for (const RouteEntry& e : entries_) {
      w.scalar(e.next_hop);
      w.scalar(e.gateway);
      w.scalar(e.hops);
      w.size(e.installed_at);
    }
    w.size(result_.connected);
    w.size(result_.total);
  }
  void load_state(snapshot::ByteReader& r) {
    epoch_ = r.u64();
    max_hops_ = r.size();
    const std::size_t n = r.counted(4 * 8);
    entries_.resize(n);
    for (RouteEntry& e : entries_) {
      e.next_hop = r.scalar<NodeId>();
      e.gateway = r.scalar<NodeId>();
      e.hops = r.scalar<std::uint32_t>();
      e.installed_at = r.size();
    }
    result_.connected = r.size();
    result_.total = r.size();
  }

 private:
  std::uint64_t epoch_ = kNoCacheEpoch;
  std::size_t max_hops_ = 0;
  std::vector<RouteEntry> entries_;  ///< Table contents at cache time.
  ConnectivityResult result_{};
};

/// Memoises oracle_connectivity (the multi-source gateway BFS) on an edge-set
/// epoch. Pass World::epoch() when `graph` is the world's own live graph;
/// pass kNoCacheEpoch to force recomputation (fault-masked views). The
/// gateway mask must be the same per-run mask on every call.
class OracleConnectivityCache {
 public:
  ConnectivityResult measure(std::uint64_t epoch, const Graph& graph,
                             const std::vector<bool>& is_gateway);

  /// Checkpoint support (same rationale as ConnectivityCache). The
  /// transpose scratch is rebuilt on the next miss and is not carried.
  void save_state(snapshot::ByteWriter& w) const {
    w.u64(epoch_);
    w.size(result_.connected);
    w.size(result_.total);
  }
  void load_state(snapshot::ByteReader& r) {
    epoch_ = r.u64();
    result_.connected = r.size();
    result_.total = r.size();
  }

 private:
  std::uint64_t epoch_ = kNoCacheEpoch;
  Graph reversed_;  ///< Transpose scratch, recycled across misses.
  ConnectivityResult result_{};
};

}  // namespace agentnet
