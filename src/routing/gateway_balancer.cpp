#include "routing/gateway_balancer.hpp"

#include <cmath>
#include <utility>

#include "common/env.hpp"
#include "common/error.hpp"

namespace agentnet {

void GatewayBalancerConfig::validate() const {
  AGENTNET_REQUIRE(smoothing > 0.0 && smoothing <= 1.0,
                   "balancer smoothing must be in (0,1]");
  AGENTNET_REQUIRE(strength >= 0.0, "balancer strength must be >= 0");
}

GatewayBalancerConfig GatewayBalancerConfig::from_env() {
  GatewayBalancerConfig config;
  config.smoothing = env_double("AGENTNET_TRAFFIC_BALANCE_SMOOTHING",
                                config.smoothing);
  config.strength = env_double("AGENTNET_TRAFFIC_BALANCE_STRENGTH",
                               config.strength);
  config.validate();
  return config;
}

GatewayBalancer::GatewayBalancer(std::size_t node_count,
                                 std::vector<bool> is_gateway,
                                 GatewayBalancerConfig config)
    : config_(config),
      is_gateway_(std::move(is_gateway)),
      load_(node_count, 0.0),
      bias_(node_count, 1.0) {
  AGENTNET_REQUIRE(is_gateway_.size() == node_count,
                   "gateway mask size mismatch");
  config_.validate();
  for (NodeId v = 0; v < node_count; ++v)
    if (is_gateway_[v]) ++gateway_count_;
}

void GatewayBalancer::observe(std::span<const std::uint64_t> deliveries) {
  AGENTNET_REQUIRE(deliveries.size() == load_.size(),
                   "deliveries span size mismatch");
  double total = 0.0;
  for (std::size_t v = 0; v < load_.size(); ++v) {
    if (!is_gateway_[v]) continue;
    load_[v] = (1.0 - config_.smoothing) * load_[v] +
               config_.smoothing * static_cast<double>(deliveries[v]);
    total += load_[v];
  }
  // No observed traffic (or no gateways, or strength 0): bias is the exact
  // multiplicative identity, so deposits are bit-identical to unbalanced.
  if (total <= 0.0 || gateway_count_ == 0 || config_.strength == 0.0) {
    for (std::size_t v = 0; v < bias_.size(); ++v) bias_[v] = 1.0;
    return;
  }
  const double mean = total / static_cast<double>(gateway_count_);
  for (std::size_t v = 0; v < bias_.size(); ++v) {
    if (!is_gateway_[v]) {
      bias_[v] = 1.0;
      continue;
    }
    // In (0, 2^strength]; 1.0 exactly at load == mean.
    const double ratio = 2.0 * mean / (load_[v] + mean);
    bias_[v] = config_.strength == 1.0 ? ratio
                                       : std::pow(ratio, config_.strength);
  }
}

}  // namespace agentnet
