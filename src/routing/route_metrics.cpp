#include "routing/route_metrics.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace agentnet {

double RouteTableReport::load_imbalance() const {
  std::size_t served_gateways = 0;
  std::size_t total = 0;
  std::size_t peak = 0;
  for (std::size_t load : gateway_load) {
    if (load == 0) continue;
    ++served_gateways;
    total += load;
    peak = std::max(peak, load);
  }
  if (served_gateways == 0) return 0.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(served_gateways);
  return static_cast<double>(peak) / mean;
}

RouteTableReport analyze_tables(const Graph& graph,
                                const RoutingTables& tables,
                                const std::vector<bool>& is_gateway,
                                std::size_t now) {
  const std::size_t n = graph.node_count();
  AGENTNET_REQUIRE(tables.size() == n, "tables/graph size mismatch");
  AGENTNET_REQUIRE(is_gateway.size() == n, "gateway mask size mismatch");
  RouteTableReport report;
  report.gateway_load.assign(n, 0);
  for (NodeId start = 0; start < n; ++start) {
    if (is_gateway[start]) continue;
    const RouteEntry& entry = tables.entry(start);
    if (!entry.valid()) continue;
    ++report.entries;
    report.hops.add(static_cast<double>(entry.hops));
    AGENTNET_ASSERT(now >= entry.installed_at);
    report.age.add(static_cast<double>(now - entry.installed_at));
    // Follow the chain to find the gateway actually reached.
    NodeId u = start;
    std::size_t steps = 0;
    while (steps <= n) {
      if (is_gateway[u]) break;
      const RouteEntry& e = tables.entry(u);
      if (!e.valid() || !graph.has_edge(u, e.next_hop)) break;
      u = e.next_hop;
      ++steps;
    }
    if (is_gateway[u]) {
      ++report.valid_entries;
      ++report.gateway_load[u];
    }
  }
  return report;
}

}  // namespace agentnet
