#include "aco/ant_routing.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace agentnet {

AntRoutingSystem::AntRoutingSystem(std::size_t node_count,
                                   std::vector<bool> is_gateway,
                                   AntRoutingConfig config, Rng rng)
    : config_(config),
      is_gateway_(std::move(is_gateway)),
      pheromone_(node_count),
      rng_(rng) {
  AGENTNET_REQUIRE(is_gateway_.size() == node_count,
                   "gateway mask size mismatch");
  AGENTNET_REQUIRE(config.launch_probability >= 0.0 &&
                       config.launch_probability <= 1.0,
                   "launch probability must be in [0,1]");
  AGENTNET_REQUIRE(config.evaporation >= 0.0 && config.evaporation < 1.0,
                   "evaporation must be in [0,1)");
  AGENTNET_REQUIRE(config.deposit > 0.0, "deposit must be > 0");
  AGENTNET_REQUIRE(config.exploration > 0.0,
                   "exploration floor must be > 0 (else unexplored links "
                   "can never be sampled)");
  AGENTNET_REQUIRE(config.beta > 0.0, "beta must be > 0");
  AGENTNET_REQUIRE(config.ant_ttl >= 1, "ant ttl must be >= 1");
  AGENTNET_REQUIRE(config.ant_loss_probability >= 0.0 &&
                       config.ant_loss_probability <= 1.0,
                   "ant loss probability must be in [0,1]");
}

double AntRoutingSystem::pheromone(NodeId from, NodeId to) const {
  AGENTNET_ASSERT(from < pheromone_.size());
  const auto it = pheromone_[from].find(to);
  return it == pheromone_[from].end() ? 0.0 : it->second;
}

namespace {

// One row's normalized-entropy term; false when the row does not qualify.
// Shared by the serial and parallel accumulations so both run the exact
// same floating-point operations per row.
bool entropy_term(const FlatMap<NodeId, double>& row, double& term) {
  if (row.size() < 2) return false;
  double total = 0.0;
  for (const auto& [to, tau] : row)
    if (tau > 0.0) total += tau;
  if (total <= 0.0) return false;
  double entropy = 0.0;
  for (const auto& [to, tau] : row) {
    if (tau <= 0.0) continue;
    const double p = tau / total;
    entropy -= p * std::log(p);
  }
  term = entropy / std::log(static_cast<double>(row.size()));
  return true;
}

}  // namespace

double AntRoutingSystem::pheromone_entropy() const {
  const std::size_t n = pheromone_.size();
  if (par_.active() && n >= 2) {
    // Per-row term slots, summed serially in row order — the same
    // left-to-right addition sequence as the serial loop, so the gauge is
    // bit-identical at any thread count.
    std::vector<double> terms(n, 0.0);
    std::vector<char> qualifies(n, 0);
    par_.for_each(n, [&](std::size_t u) {
      double term = 0.0;
      if (entropy_term(pheromone_[u], term)) {
        terms[u] = term;
        qualifies[u] = 1;
      }
    });
    double sum = 0.0;
    std::size_t rows = 0;
    for (std::size_t u = 0; u < n; ++u) {
      if (qualifies[u]) {
        sum += terms[u];
        ++rows;
      }
    }
    return rows == 0 ? 0.0 : sum / static_cast<double>(rows);
  }
  double sum = 0.0;
  std::size_t rows = 0;
  for (const auto& row : pheromone_) {
    double term = 0.0;
    if (!entropy_term(row, term)) continue;
    sum += term;
    ++rows;
  }
  return rows == 0 ? 0.0 : sum / static_cast<double>(rows);
}

void AntRoutingSystem::account_hop(const Ant& ant) {
  ++ant_hops_;
  AGENTNET_COUNT(kAntHops);
  control_bytes_ += 16 + 8 * ant.path.size();
}

void AntRoutingSystem::advance_forward(Ant& ant, const Graph& graph,
                                       std::span<const double> hop_delays) {
  const NodeId at = ant.path.back();
  if (ant.path.size() > config_.ant_ttl) {
    ant.path.clear();  // ttl exhausted: die
    return;
  }
  // Candidates: current neighbours not already on the path (loop avoidance).
  std::vector<NodeId> candidates;
  std::vector<double> weights;
  double total = 0.0;
  for (NodeId v : graph.out_neighbors(at)) {
    if (std::find(ant.path.begin(), ant.path.end(), v) != ant.path.end())
      continue;
    const double w =
        std::pow(pheromone(at, v) + config_.exploration, config_.beta);
    candidates.push_back(v);
    weights.push_back(w);
    total += w;
  }
  if (candidates.empty()) {
    ant.path.clear();  // dead end: die
    return;
  }
  double pick = rng_.uniform01() * total;
  std::size_t chosen = candidates.size() - 1;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick <= 0.0) {
      chosen = i;
      break;
    }
  }
  ant.path.push_back(candidates[chosen]);
  // The ant experiences the queueing delay of the link it just crossed
  // (node `at`'s out-queue). An empty span is an idle data plane: every
  // hop costs exactly 1.0, so trip_time == hop count bit-for-bit.
  ant.trip_time += hop_delays.empty() ? 1.0 : hop_delays[at];
  account_hop(ant);
  if (is_gateway_[candidates[chosen]]) {
    // Turn around: the backward ant starts at the gateway end.
    ant.backward = true;
    ant.position = ant.path.size() - 1;
  }
}

void AntRoutingSystem::advance_backward(Ant& ant, const Graph& graph,
                                        std::span<const double> gateway_bias) {
  // The ant sits at path[position] and wants to hop to path[position-1],
  // reinforcing that node's entry toward where the ant came from.
  AGENTNET_ASSERT(ant.position > 0);
  const NodeId from = ant.path[ant.position];
  const NodeId to = ant.path[ant.position - 1];
  if (!graph.has_edge(from, to)) {
    ant.path.clear();  // the return path broke under it: die
    return;
  }
  ant.position -= 1;
  account_hop(ant);
  // Reinforce to → (node the backward ant just came from): that is the
  // forward direction toward the gateway. Deposit scales inversely with
  // path quality — hop count historically, measured trip time in kDelay
  // mode (AntNet's goodness). On an idle plane trip_time equals the hop
  // count exactly, so the two modes coincide bit-for-bit at zero load.
  double amount =
      config_.reinforcement == AntReinforcement::kDelay
          ? config_.deposit / ant.trip_time
          : config_.deposit / static_cast<double>(ant.path.size() - 1);
  // Deposits through a loaded gateway are damped by the balancer's bias
  // (exactly 1.0 when balancing is off or the load is uniform; multiplying
  // by 1.0 is an IEEE identity, preserving bit-identical goldens).
  if (!gateway_bias.empty()) amount *= gateway_bias[ant.path.back()];
  pheromone_[to][from] += amount;
  if (ant.position == 0) {
    ++ants_completed_;
    ant.path.clear();  // home again
  }
}

void AntRoutingSystem::step(const Graph& graph, std::size_t now) {
  step(graph, now, {}, {});
}

void AntRoutingSystem::step(const Graph& graph, std::size_t now,
                            std::span<const double> hop_delays,
                            std::span<const double> gateway_bias) {
  (void)now;
  AGENTNET_REQUIRE(graph.node_count() == pheromone_.size(),
                   "graph size does not match ant system");
  AGENTNET_REQUIRE(hop_delays.empty() ||
                       hop_delays.size() == pheromone_.size(),
                   "hop delay span size mismatch");
  AGENTNET_REQUIRE(gateway_bias.empty() ||
                       gateway_bias.size() == pheromone_.size(),
                   "gateway bias span size mismatch");

  // Evaporation, with pruning of negligible residue. Rows are disjoint, so
  // they fan over the agent engine; an inactive engine runs the exact
  // serial row loop.
  const double keep = 1.0 - config_.evaporation;
  par_.for_each(pheromone_.size(), [&](std::size_t u) {
    auto& table = pheromone_[u];
    for (auto it = table.begin(); it != table.end();) {
      it->second *= keep;
      if (it->second < 1e-9)
        it = table.erase(it);
      else
        ++it;
    }
  });

  // Launches (gateways sink ants, they do not source them).
  for (NodeId v = 0; v < pheromone_.size(); ++v) {
    if (is_gateway_[v]) continue;
    if (ants_.size() >= config_.max_ants) break;
    if (rng_.bernoulli(config_.launch_probability)) {
      Ant ant;
      ant.path.push_back(v);
      ants_.push_back(std::move(ant));
      ++ants_launched_;
      AGENTNET_COUNT(kAntsLaunched);
    }
  }

  // Advance every ant one hop.
  for (auto& ant : ants_) {
    if (ant.path.empty()) continue;
    if (config_.ant_loss_probability > 0.0 &&
        rng_.bernoulli(config_.ant_loss_probability)) {
      ant.path.clear();  // lost in transit
      AGENTNET_COUNT(kAgentsLost);
      continue;
    }
    if (ant.backward)
      advance_backward(ant, graph, gateway_bias);
    else
      advance_forward(ant, graph, hop_delays);
  }
  std::erase_if(ants_, [](const Ant& ant) { return ant.path.empty(); });
}

RoutingTables AntRoutingSystem::snapshot_tables(std::size_t now) const {
  const std::size_t n = pheromone_.size();
  RoutingTables tables(n);
  // Per-node argmax over the pheromone row; true when the node gets an
  // entry. First-wins on ties (strict >), same as the historical loop.
  const auto best_entry = [&](NodeId u, RouteEntry& entry) {
    if (is_gateway_[u]) return false;
    const auto& table = pheromone_[u];
    if (table.empty()) return false;
    auto best = table.begin();
    for (auto it = std::next(table.begin()); it != table.end(); ++it)
      if (it->second > best->second) best = it;
    entry.next_hop = best->first;
    entry.gateway = kInvalidNode;  // ants route toward *any* gateway
    entry.hops = 1;                // unknown; validity is walk-checked
    entry.installed_at = now;
    return true;
  };
  if (par_.active() && n >= 2) {
    // Argmax scans fan over the engine into per-node slots; the table is
    // filled serially in node order, exactly like the serial loop.
    std::vector<RouteEntry> entries(n);
    std::vector<char> present(n, 0);
    par_.for_each(n, [&](std::size_t u) {
      RouteEntry entry;
      if (best_entry(static_cast<NodeId>(u), entry)) {
        entries[u] = entry;
        present[u] = 1;
      }
    });
    for (NodeId u = 0; u < n; ++u)
      if (present[u]) tables.force(u, entries[u]);
    return tables;
  }
  for (NodeId u = 0; u < n; ++u) {
    RouteEntry entry;
    if (best_entry(u, entry)) tables.force(u, entry);
  }
  return tables;
}

}  // namespace agentnet
