// Ant-colony routing baseline (AntHocNet-style, after Di Caro, Ducatelle &
// Gambardella — the paper's reference [9]).
//
// Where the paper's mobile agents carry state and write routing tables
// directly, ant routing keeps *pheromone* on the nodes: light forward ants
// sample paths toward a gateway in Monte Carlo fashion (next hop drawn
// proportionally to pheromone), and on success a backward ant retraces the
// path depositing pheromone scaled by path quality. Pheromone evaporates,
// so stale paths fade as the MANET rewires.
//
// The system plugs into the same World / connectivity machinery as the
// paper's agents: snapshot_tables() projects each node's argmax pheromone
// entry into a RoutingTables view, which measure_connectivity() then
// validates over the live graph — an apples-to-apples comparison (bench
// extF), including control overhead in bytes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/agent_parallel.hpp"
#include "common/flat_map.hpp"
#include "common/rng.hpp"
#include "net/graph.hpp"
#include "routing/routing_table.hpp"
#include "snapshot/bytes.hpp"

namespace agentnet {

/// What a backward ant's deposit is scaled by (AntNet's goodness measure).
enum class AntReinforcement {
  /// deposit / hop_count — the historical mode; the default, and
  /// bit-identical to the pre-delay-plane behaviour.
  kHopCount,
  /// deposit / measured trip time, where the forward ant accumulates the
  /// data plane's per-hop queueing delays (see docs/TRAFFIC.md). With no
  /// delay feed (or an idle network) every hop costs exactly 1.0, so this
  /// mode degenerates to kHopCount bit-for-bit.
  kDelay,
};

struct AntRoutingConfig {
  /// Per non-gateway node per step: probability of launching a forward ant.
  double launch_probability = 0.2;
  /// Pheromone decay factor per step (τ ← (1-ρ)τ).
  double evaporation = 0.02;
  /// Pheromone deposited by a backward ant, divided by path length.
  double deposit = 1.0;
  /// Additive exploration floor so unexplored links keep a chance.
  double exploration = 0.05;
  /// Pheromone exponent in the sampling weight (τ+ε)^β.
  double beta = 2.0;
  /// Forward-ant hop budget.
  std::uint32_t ant_ttl = 40;
  /// Concurrent-ant cap (drops launches beyond it).
  std::size_t max_ants = 4096;
  /// Failure injection: per step, each in-flight ant is lost with this
  /// probability (the control packet vanishes mid-hop). 0 draws nothing,
  /// keeping fault-free runs on their historical RNG sequence.
  double ant_loss_probability = 0.0;
  /// Deposit scaling: hop count (default, historical) or measured delay.
  AntReinforcement reinforcement = AntReinforcement::kHopCount;
};

class AntRoutingSystem {
 public:
  AntRoutingSystem(std::size_t node_count, std::vector<bool> is_gateway,
                   AntRoutingConfig config, Rng rng);

  /// One simulation step: evaporate, launch forward ants, advance every
  /// ant one hop (forward ants sample, backward ants retrace + deposit).
  void step(const Graph& graph, std::size_t now);

  /// As above, with the data plane's control inputs. `hop_delays[v]` is the
  /// current per-hop delay at node v (FlowTrafficSimulator::hop_delays());
  /// forward ants accumulate it into their trip time, which kDelay mode
  /// reinforces by. `gateway_bias[g]` multiplies deposits from backward
  /// ants that turned around at gateway g (GatewayBalancer::bias()), so
  /// overloaded gateways attract less traffic. Either span may be empty:
  /// empty = unit delays / unit bias, which leaves every deposit bit-
  /// identical to the plain step().
  void step(const Graph& graph, std::size_t now,
            std::span<const double> hop_delays,
            std::span<const double> gateway_bias);

  /// Current pheromone on the directed pair (from → to); 0 if none.
  double pheromone(NodeId from, NodeId to) const;

  /// Mean normalized Shannon entropy of the pheromone rows with at least
  /// two positive entries: 1.0 = undecided (uniform), → 0 as each row
  /// concentrates on one next hop. 0.0 when no row qualifies. The
  /// time-series kPheromoneEntropy gauge — a convergence indicator.
  double pheromone_entropy() const;

  /// Each node's argmax-pheromone next hop as a routing-table snapshot
  /// (entries stamped `now` so the freshness policy never evicts them).
  RoutingTables snapshot_tables(std::size_t now) const;

  /// Intra-run parallelism: evaporation rows, the entropy gauge and the
  /// snapshot argmax fan over the agent engine with per-row slots reduced
  /// in row order (bit-identical). Ant advancement and launches stay
  /// serial — they share the colony RNG. Inactive engine (the default) is
  /// the exact serial path.
  void set_parallel(const AgentParallel& par) { par_ = par; }

  std::size_t active_ants() const { return ants_.size(); }
  /// Cumulative ant hops (forward + backward).
  std::size_t ant_hops() const { return ant_hops_; }
  /// Cumulative control traffic: each hop ships the ant's 16-byte header
  /// plus its carried path (8 bytes per entry).
  std::size_t control_bytes() const { return control_bytes_; }
  std::size_t ants_launched() const { return ants_launched_; }
  std::size_t ants_completed() const { return ants_completed_; }

  const AntRoutingConfig& config() const { return config_; }

  /// Checkpoint support: pheromone rows, in-flight ants, RNG and the
  /// cumulative overhead counters; config and gateway mask are rebuilt
  /// from the task config.
  void save_state(snapshot::ByteWriter& w) const {
    w.size(pheromone_.size());
    for (const auto& row : pheromone_)
      row.save_state(
          w, [](snapshot::ByteWriter& out, double v) { out.f64(v); });
    w.size(ants_.size());
    for (const Ant& ant : ants_) {
      w.pod_vec(ant.path);
      w.size(ant.position);
      w.boolean(ant.backward);
      w.f64(ant.trip_time);
    }
    rng_.save_state(w);
    w.size(ant_hops_);
    w.size(control_bytes_);
    w.size(ants_launched_);
    w.size(ants_completed_);
  }
  void load_state(snapshot::ByteReader& r) {
    const std::size_t rows = r.size();
    AGENTNET_REQUIRE(rows == pheromone_.size(),
                     "snapshot: pheromone row count mismatch");
    for (auto& row : pheromone_)
      row.load_state(
          r, [](snapshot::ByteReader& in, double& v) { v = in.f64(); });
    const std::size_t n = r.counted(8);
    ants_.resize(n);
    for (Ant& ant : ants_) {
      r.pod_vec(ant.path);
      ant.position = r.size();
      ant.backward = r.boolean();
      ant.trip_time = r.f64();
    }
    rng_.load_state(r);
    ant_hops_ = r.size();
    control_bytes_ = r.size();
    ants_launched_ = r.size();
    ants_completed_ = r.size();
  }

 private:
  struct Ant {
    std::vector<NodeId> path;  ///< Nodes visited, path.front() = source.
    std::size_t position = 0;  ///< Index into path (backward phase).
    bool backward = false;
    double trip_time = 0.0;  ///< Sum of per-hop delays on the forward leg.
  };

  void advance_forward(Ant& ant, const Graph& graph,
                       std::span<const double> hop_delays);
  void advance_backward(Ant& ant, const Graph& graph,
                        std::span<const double> gateway_bias);
  void account_hop(const Ant& ant);

  AntRoutingConfig config_;
  std::vector<bool> is_gateway_;
  /// pheromone_[u] maps neighbour id → τ(u → neighbour). Flat sorted rows:
  /// same ascending-id iteration (and thus bit-identical evaporation and
  /// argmax order) as the std::map they replaced.
  std::vector<FlatMap<NodeId, double>> pheromone_;
  std::vector<Ant> ants_;
  Rng rng_;
  AgentParallel par_;  ///< Inactive by default; see set_parallel().
  std::size_t ant_hops_ = 0;
  std::size_t control_bytes_ = 0;
  std::size_t ants_launched_ = 0;
  std::size_t ants_completed_ = 0;
};

/// Runs ant routing on a scenario world and reports the same converged
/// connectivity statistic as run_routing_task, plus overhead counters.
struct AntRoutingResult {
  std::vector<double> connectivity;
  double mean_connectivity = 0.0;
  double stddev_connectivity = 0.0;
  std::size_t ant_hops = 0;
  std::size_t control_bytes = 0;
  std::size_t ants_launched = 0;
  std::size_t ants_completed = 0;
};

}  // namespace agentnet
