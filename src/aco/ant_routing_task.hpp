// Runs the ant-colony baseline on the paper's routing scenario with the
// identical measurement protocol as run_routing_task, so bench extF can
// compare the two systems line for line.
#pragma once

#include "aco/ant_routing.hpp"
#include "core/routing_task.hpp"

namespace agentnet {

struct AntRoutingTaskConfig {
  AntRoutingConfig ants{};
  std::size_t steps = 300;
  std::size_t measure_from = 150;
  /// The unified fault model (fault/fault_plan.hpp): topology faults mask
  /// the graph the ants walk and the measurement sees; the plan's
  /// agent_loss_probability maps onto ant loss unless `ants` sets its own.
  FaultPlan faults;
  /// Intra-run agent parallelism (AGENTNET_AGENT_THREADS): evaporation
  /// rows, the entropy gauge, the snapshot argmax and the per-root
  /// connectivity walks fan over the shared agent pool. Bit-identical at
  /// every thread count; threads = 1 (the default) is the exact serial
  /// path.
  AgentParallelConfig agent_parallel = AgentParallelConfig::from_env();
  /// Checkpoint/restore handle for this run (nullptr = disabled). Owned by
  /// the caller; see snapshot/snapshot.hpp and docs/ROBUSTNESS.md.
  snapshot::RunCheckpointPort* checkpoint = nullptr;
};

AntRoutingResult run_ant_routing_task(const RoutingScenario& scenario,
                                      const AntRoutingTaskConfig& config,
                                      Rng rng);

}  // namespace agentnet
