#include "aco/ant_routing_task.hpp"

#include <optional>

#include "common/stats.hpp"
#include "fault/fault_injector.hpp"
#include "obs/obs.hpp"
#include "routing/connectivity.hpp"
#include "snapshot/snapshot.hpp"

namespace agentnet {

AntRoutingResult run_ant_routing_task(const RoutingScenario& scenario,
                                      const AntRoutingTaskConfig& config,
                                      Rng rng) {
  AGENTNET_REQUIRE(config.measure_from < config.steps,
                   "measure_from must precede steps");
  const FaultPlan& plan = config.faults;
  plan.validate();
  obs::ScopedPhase setup_phase(obs::Phase::kSetup);
  World world = scenario.make_world();
  // Fork only when faults are live: an inert plan must leave the RNG
  // sequence — and therefore the fault-free baseline — untouched.
  std::optional<FaultInjector> injector;
  if (plan.any()) {
    Rng fault_stream = rng.fork(0xFA11);
    injector.emplace(plan, fault_stream);
  }
  AntRoutingConfig ant_config = config.ants;
  if (plan.agent_loss_probability > 0.0 &&
      ant_config.ant_loss_probability == 0.0)
    ant_config.ant_loss_probability = plan.agent_loss_probability;
  AntRoutingSystem ants(world.node_count(), scenario.is_gateway(), ant_config,
                        rng);
  const AgentParallel par(config.agent_parallel);
  ants.set_parallel(par);
  AntRoutingResult result;
  result.connectivity.reserve(config.steps);
  // Keyed on (world epoch, snapshot contents): skips the walk when neither
  // the edge set nor the pheromone-derived tables changed since last step.
  ConnectivityCache conn_cache;

  // Checkpoint/restore: the colony, the world, the fault mask and the
  // measurement cache. The run RNG is not carried — the colony copied it at
  // construction and nothing draws from the local after setup.
  const auto save_run = [&](snapshot::ByteWriter& w) {
    world.save_state(w);
    w.boolean(injector.has_value());
    if (injector) injector->save_state(w);
    ants.save_state(w);
    conn_cache.save_state(w);
    w.pod_vec(result.connectivity);
  };
  const auto load_run = [&](snapshot::ByteReader& r) {
    world.load_state(r);
    AGENTNET_REQUIRE(r.boolean() == injector.has_value(),
                     "snapshot: fault plan mismatch");
    if (injector) injector->load_state(r);
    ants.load_state(r);
    conn_cache.load_state(r);
    r.pod_vec(result.connectivity);
  };

  setup_phase.stop();
  std::size_t resume_at = 0;
  if (config.checkpoint && config.checkpoint->resuming())
    resume_at = config.checkpoint->restore(load_run);
  for (std::size_t t = resume_at; t < config.steps; ++t) {
    if (config.checkpoint && config.checkpoint->save_due(t))
      config.checkpoint->save(t, save_run);
    {
      AGENTNET_OBS_PHASE(kStep);
      const Graph& live =
          injector ? injector->live_graph(world, world.step()) : world.graph();
      ants.step(live, t);
    }
    world.advance();
    AGENTNET_OBS_PHASE(kMeasure);
    const RoutingTables tables = ants.snapshot_tables(t);
    if (injector && plan.topology_faults()) {
      const Graph& measured = injector->live_graph(world, world.step());
      result.connectivity.push_back(
          measure_connectivity(measured, tables, scenario.is_gateway(), 0, par)
              .fraction());
    } else {
      // Fault-free topology: measure over the frozen CSR snapshot
      // (bit-identical to walking world.graph()).
      if (injector) injector->live_graph(world, world.step());
      result.connectivity.push_back(
          conn_cache.measure(world, tables, scenario.is_gateway(), 0, par)
              .fraction());
    }
    AGENTNET_OBS_GAUGE(kConnectivity, t, result.connectivity.back());
    if (AGENTNET_OBS_METRICS_WANT(t)) {
      AGENTNET_OBS_GAUGE(kPheromoneEntropy, t, ants.pheromone_entropy());
      if (injector && plan.topology_faults())
        AGENTNET_OBS_GAUGE(kLiveFraction, t,
                           injector->live_fraction(world.node_count()));
    }
    AGENTNET_OBS_METRICS_TICK(t);
  }
  AGENTNET_OBS_PHASE(kSummarize);
  RunningStats window;
  for (std::size_t t = config.measure_from; t < config.steps; ++t)
    window.add(result.connectivity[t]);
  result.mean_connectivity = window.mean();
  result.stddev_connectivity = window.stddev();
  result.ant_hops = ants.ant_hops();
  result.control_bytes = ants.control_bytes();
  result.ants_launched = ants.ants_launched();
  result.ants_completed = ants.ants_completed();
  return result;
}

}  // namespace agentnet
