#include "aco/ant_routing_task.hpp"

#include "common/stats.hpp"
#include "obs/obs.hpp"
#include "routing/connectivity.hpp"

namespace agentnet {

AntRoutingResult run_ant_routing_task(const RoutingScenario& scenario,
                                      const AntRoutingTaskConfig& config,
                                      Rng rng) {
  AGENTNET_REQUIRE(config.measure_from < config.steps,
                   "measure_from must precede steps");
  obs::ScopedPhase setup_phase(obs::Phase::kSetup);
  World world = scenario.make_world();
  AntRoutingSystem ants(world.node_count(), scenario.is_gateway(),
                        config.ants, rng);
  AntRoutingResult result;
  result.connectivity.reserve(config.steps);
  setup_phase.stop();
  for (std::size_t t = 0; t < config.steps; ++t) {
    {
      AGENTNET_OBS_PHASE(kStep);
      ants.step(world.graph(), t);
    }
    world.advance();
    AGENTNET_OBS_PHASE(kMeasure);
    const RoutingTables tables = ants.snapshot_tables(t);
    result.connectivity.push_back(
        measure_connectivity(world.graph(), tables, scenario.is_gateway())
            .fraction());
  }
  AGENTNET_OBS_PHASE(kSummarize);
  RunningStats window;
  for (std::size_t t = config.measure_from; t < config.steps; ++t)
    window.add(result.connectivity[t]);
  result.mean_connectivity = window.mean();
  result.stddev_connectivity = window.stddev();
  result.ant_hops = ants.ant_hops();
  result.control_bytes = ants.control_bytes();
  result.ants_launched = ants.ants_launched();
  result.ants_completed = ants.ants_completed();
  return result;
}

}  // namespace agentnet
