#include "aco/ant_routing_task.hpp"

#include "common/stats.hpp"
#include "routing/connectivity.hpp"

namespace agentnet {

AntRoutingResult run_ant_routing_task(const RoutingScenario& scenario,
                                      const AntRoutingTaskConfig& config,
                                      Rng rng) {
  AGENTNET_REQUIRE(config.measure_from < config.steps,
                   "measure_from must precede steps");
  World world = scenario.make_world();
  AntRoutingSystem ants(world.node_count(), scenario.is_gateway(),
                        config.ants, rng);
  AntRoutingResult result;
  result.connectivity.reserve(config.steps);
  for (std::size_t t = 0; t < config.steps; ++t) {
    ants.step(world.graph(), t);
    world.advance();
    const RoutingTables tables = ants.snapshot_tables(t);
    result.connectivity.push_back(
        measure_connectivity(world.graph(), tables, scenario.is_gateway())
            .fraction());
  }
  RunningStats window;
  for (std::size_t t = config.measure_from; t < config.steps; ++t)
    window.add(result.connectivity[t]);
  result.mean_connectivity = window.mean();
  result.stddev_connectivity = window.stddev();
  result.ant_hops = ants.ant_hops();
  result.control_bytes = ants.control_bytes();
  result.ants_launched = ants.ants_launched();
  result.ants_completed = ants.ants_completed();
  return result;
}

}  // namespace agentnet
